//! Inference-throughput harness: prefill and decode tokens/sec on the
//! tiny proxy, KV-cached decode vs naive full recompute, and continuous
//! batching vs serial generation.
//!
//! Emits `BENCH_infer.json` into the output directory (first positional
//! argument, default `.`). `--smoke` shortens timing reps for CI;
//! `--merge` max-merges this run into an existing `BENCH_infer.json`
//! (per-metric best across runs, for the double-sweep CI smoke stage).
//! Every measured path is also cross-checked for byte-identical tokens,
//! so a throughput number can never come from a diverged implementation.

use std::sync::Arc;
use std::time::Instant;

use apollo_bench::perf::{InferEntry, InferReport};
use apollo_infer::{generate, sample, GenConfig, GenRequest, SchedConfig, Scheduler};
use apollo_nn::{DecodeBackend, LinearMode, LlamaModel, ModelConfig, QuantizedModel};
use apollo_obs::Obs;
use apollo_tensor::{current_threads, set_numerics_override, simd_tier, Matrix, NumericsMode, Rng};

/// Single-sequence workload: 128-token prompt, 64 decoded tokens, so the
/// naive-vs-KV comparison runs at sequence length ≥ 128 throughout.
const PROMPT_TOKENS: usize = 128;
const DECODE_TOKENS: usize = 64;
/// Concurrent requests in the batched-vs-serial measurement.
const BATCH_REQUESTS: usize = 8;

/// Median seconds-per-invocation over `reps` samples, where `f` returns
/// the seconds of the section it measures internally (setup excluded).
/// Each sample loops `f` until at least `min_secs` of measured time has
/// accumulated, so a sample is never a single noisy invocation.
fn median_of(reps: usize, min_secs: f64, mut f: impl FnMut() -> f64) -> f64 {
    f(); // warmup
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut total = 0.0;
        let mut iters = 0u32;
        loop {
            total += f();
            iters += 1;
            if total >= min_secs {
                break;
            }
        }
        samples.push(total / f64::from(iters));
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Timing-loop parameters (per mode).
#[derive(Clone, Copy)]
struct Timing {
    reps: usize,
    min_secs: f64,
}

fn random_tokens(n: usize, vocab: usize, rng: &mut Rng) -> Vec<u32> {
    (0..n).map(|_| rng.below(vocab) as u32).collect()
}

/// LM-head logits of the last hidden row.
fn last_logits(model: &LlamaModel, hidden: &Matrix) -> Vec<f32> {
    let mut row = Matrix::zeros(1, hidden.cols());
    row.row_mut(0)
        .copy_from_slice(hidden.row(hidden.rows() - 1));
    model.lm_logits(&row).as_slice().to_vec()
}

/// Seconds per prefill of the whole prompt into a fresh cache.
fn time_prefill(model: &LlamaModel, prompt: &[u32], t: Timing) -> f64 {
    let rows: Vec<(usize, u32)> = prompt.iter().map(|&t| (0, t)).collect();
    median_of(t.reps, t.min_secs, || {
        let mut caches = vec![model.new_kv_cache(prompt.len())];
        let t0 = Instant::now();
        let hidden = model.forward_cached(&mut caches, &rows);
        std::hint::black_box(hidden.as_slice()[0]);
        t0.elapsed().as_secs_f64()
    })
}

/// Greedy KV-cached decode: seconds per rep (prefill excluded) and the
/// decoded tokens (identical across reps by determinism).
fn time_kv_decode(model: &LlamaModel, prompt: &[u32], t: Timing) -> (f64, Vec<u32>) {
    let greedy = GenConfig::default();
    let rows: Vec<(usize, u32)> = prompt.iter().map(|&t| (0, t)).collect();
    let mut out = Vec::new();
    let secs = median_of(t.reps, t.min_secs, || {
        let mut caches = vec![model.new_kv_cache(prompt.len() + DECODE_TOKENS)];
        let hidden = model.forward_cached(&mut caches, &rows);
        let mut logits = last_logits(model, &hidden);
        let mut rng = Rng::seed_from_u64(0);
        out.clear();
        let t0 = Instant::now();
        for _ in 0..DECODE_TOKENS {
            let tok = sample(&logits, &greedy, &mut rng);
            out.push(tok);
            let hidden = model.forward_cached(&mut caches, &[(0, tok)]);
            logits = last_logits(model, &hidden);
        }
        t0.elapsed().as_secs_f64()
    });
    (secs, out)
}

/// LM-head logits of the last hidden row, via the backend interface.
fn last_logits_backend(backend: &DecodeBackend, hidden: &Matrix) -> Vec<f32> {
    let mut row = Matrix::zeros(1, hidden.cols());
    row.row_mut(0)
        .copy_from_slice(hidden.row(hidden.rows() - 1));
    backend.lm_logits(&row).as_slice().to_vec()
}

/// Greedy KV-cached decode through a [`DecodeBackend`] — same workload as
/// [`time_kv_decode`], used for the INT8+BF16 snapshot path.
fn time_backend_decode(backend: &DecodeBackend, prompt: &[u32], t: Timing) -> (f64, Vec<u32>) {
    let greedy = GenConfig::default();
    let rows: Vec<(usize, u32)> = prompt.iter().map(|&t| (0, t)).collect();
    let mut out = Vec::new();
    let secs = median_of(t.reps, t.min_secs, || {
        let mut caches = backend.new_caches(1, prompt.len() + DECODE_TOKENS);
        let hidden = backend.forward_cached(&mut caches, &rows);
        let mut logits = last_logits_backend(backend, &hidden);
        let mut rng = Rng::seed_from_u64(0);
        out.clear();
        let t0 = Instant::now();
        for _ in 0..DECODE_TOKENS {
            let tok = sample(&logits, &greedy, &mut rng);
            out.push(tok);
            let hidden = backend.forward_cached(&mut caches, &[(0, tok)]);
            logits = last_logits_backend(backend, &hidden);
        }
        t0.elapsed().as_secs_f64()
    });
    (secs, out)
}

/// Greedy KV-cached decode with a LoRA adapter's low-rank delta applied
/// to every projection — the multi-tenant serving fast path. Same
/// workload as [`time_kv_decode`], so the ratio of the two is the cost of
/// carrying a tenant's delta without materializing its dense weights.
fn time_adapter_decode(
    model: &LlamaModel,
    adapter: &apollo_nn::LoraAdapter,
    prompt: &[u32],
    t: Timing,
) -> (f64, Vec<u32>) {
    let greedy = GenConfig::default();
    let rows: Vec<(usize, u32)> = prompt.iter().map(|&t| (0, t)).collect();
    let ads = vec![Some(adapter); rows.len()];
    let mut out = Vec::new();
    let secs = median_of(t.reps, t.min_secs, || {
        let mut caches = vec![model.new_kv_cache(prompt.len() + DECODE_TOKENS)];
        let hidden = model.forward_cached_with(&mut caches, &rows, &ads);
        let mut logits = last_logits(model, &hidden);
        let mut rng = Rng::seed_from_u64(0);
        out.clear();
        let t0 = Instant::now();
        for _ in 0..DECODE_TOKENS {
            let tok = sample(&logits, &greedy, &mut rng);
            out.push(tok);
            let hidden = model.forward_cached_with(&mut caches, &[(0, tok)], &[Some(adapter)]);
            logits = last_logits(model, &hidden);
        }
        t0.elapsed().as_secs_f64()
    });
    (secs, out)
}

/// Greedy decode recomputing the full forward over the whole sequence for
/// every token — the no-KV-cache baseline.
fn time_naive_decode(model: &LlamaModel, prompt: &[u32], t: Timing) -> (f64, Vec<u32>) {
    let greedy = GenConfig::default();
    let mut out = Vec::new();
    let secs = median_of(t.reps, t.min_secs, || {
        let mut tokens = prompt.to_vec();
        let mut rng = Rng::seed_from_u64(0);
        out.clear();
        let t0 = Instant::now();
        for _ in 0..DECODE_TOKENS {
            let logits = model.full_logits(&tokens, 1);
            let tok = sample(logits.row(tokens.len() - 1), &greedy, &mut rng);
            out.push(tok);
            tokens.push(tok);
        }
        t0.elapsed().as_secs_f64()
    });
    (secs, out)
}

/// The batched-vs-serial request mix: distinct prompts and seeds.
fn batch_requests(vocab: usize) -> Vec<GenRequest> {
    let mut rng = Rng::seed_from_u64(0xBA7C);
    (0..BATCH_REQUESTS)
        .map(|i| GenRequest {
            prompt: random_tokens(32, vocab, &mut rng),
            cfg: GenConfig {
                max_new_tokens: 32,
                seed: i as u64,
                ..GenConfig::default()
            },
            deadline: None,
            adapter: None,
        })
        .collect()
}

/// Seconds to serve all requests one at a time through the serial engine.
fn time_serial(model: &LlamaModel, reqs: &[GenRequest], t: Timing) -> (f64, Vec<Vec<u32>>) {
    let mut outs = Vec::new();
    let secs = median_of(t.reps, t.min_secs, || {
        outs.clear();
        let t0 = Instant::now();
        for r in reqs {
            outs.push(generate(model, &r.prompt, &r.cfg, |_| {}));
        }
        t0.elapsed().as_secs_f64()
    });
    (secs, outs)
}

/// Seconds to serve all requests concurrently through the scheduler.
fn time_batched(model: &Arc<LlamaModel>, reqs: &[GenRequest], t: Timing) -> (f64, Vec<Vec<u32>>) {
    let cfg = SchedConfig {
        max_active: BATCH_REQUESTS,
        queue_cap: BATCH_REQUESTS,
        prefill_chunk: 16,
        kv_capacity: 64,
        prefix_cache_bytes: 0,
    };
    let mut outs = Vec::new();
    let secs = median_of(t.reps, t.min_secs, || {
        let mut sched = Scheduler::new(Arc::clone(model), cfg.clone(), Obs::disabled());
        let t0 = Instant::now();
        for r in reqs {
            sched
                .submit(r.clone())
                .expect("queue sized for all requests");
        }
        let mut results = sched.run_to_completion();
        let secs = t0.elapsed().as_secs_f64();
        results.sort_by_key(|r| r.id);
        outs = results.into_iter().map(|r| r.tokens).collect();
        secs
    });
    (secs, outs)
}

fn main() {
    let mut mode = "full".to_string();
    let mut out_dir = ".".to_string();
    let mut merge = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => mode = "smoke".to_string(),
            "--merge" => merge = true,
            other => out_dir = other.to_string(),
        }
    }
    let t = if mode == "smoke" {
        Timing {
            reps: 3,
            min_secs: 0.05,
        }
    } else {
        Timing {
            reps: 7,
            min_secs: 0.2,
        }
    };

    let cfg = ModelConfig::tiny_60m();
    let mut rng = Rng::seed_from_u64(0x1FE2);
    let model = Arc::new(LlamaModel::new(&cfg, LinearMode::Dense, &mut rng));
    let prompt = random_tokens(PROMPT_TOKENS, cfg.vocab_size, &mut rng);

    let prefill_secs = time_prefill(&model, &prompt, t);
    let prefill_tps = PROMPT_TOKENS as f64 / prefill_secs;
    eprintln!("[infer] prefill          {prefill_tps:9.1} tok/s ({PROMPT_TOKENS} tokens)");

    let (kv_secs, kv_tokens) = time_kv_decode(&model, &prompt, t);
    let kv_tps = DECODE_TOKENS as f64 / kv_secs;
    eprintln!("[infer] kv decode        {kv_tps:9.1} tok/s ({DECODE_TOKENS} tokens)");

    // Fast-tier decode: same exact-f32 model and workload, relaxed SIMD
    // kernels via the thread-local numerics override. Tokens are not
    // asserted byte-identical — the fast tier trades the bitwise contract
    // for throughput — but the decode must still run to completion over
    // the full workload.
    set_numerics_override(Some(NumericsMode::Fast));
    let (fast_secs, fast_tokens) = time_kv_decode(&model, &prompt, t);
    set_numerics_override(None);
    let fast_tps = DECODE_TOKENS as f64 / fast_secs;
    let fast_speedup = fast_tps / kv_tps;
    eprintln!("[infer] fast kv decode   {fast_tps:9.1} tok/s  (vs exact {fast_speedup:.2}x)");
    assert_eq!(fast_tokens.len(), DECODE_TOKENS, "fast decode truncated");

    // INT8 weights + BF16 KV decode: group-128 quantized snapshot through
    // the fused dequant-gemv path (always the relaxed tier).
    let int8: DecodeBackend = QuantizedModel::from_model(&model).into();
    let (int8_secs, int8_tokens) = time_backend_decode(&int8, &prompt, t);
    let int8_tps = DECODE_TOKENS as f64 / int8_secs;
    let int8_speedup = int8_tps / kv_tps;
    eprintln!("[infer] int8 decode      {int8_tps:9.1} tok/s  (vs exact {int8_speedup:.2}x)");
    assert_eq!(int8_tokens.len(), DECODE_TOKENS, "int8 decode truncated");
    assert!(
        int8_tokens.iter().all(|&t| (t as usize) < cfg.vocab_size),
        "int8 decode emitted out-of-vocab tokens"
    );

    // Adapter decode: the exact path plus one tenant's low-rank delta on
    // all seven projections per layer — the per-row cost of multi-tenant
    // serving over a shared base model.
    let adapter = {
        let mut lrng = Rng::seed_from_u64(0xADA9);
        let mut lora = LlamaModel::new(
            &cfg,
            LinearMode::LoRa {
                rank: 4,
                alpha: 8.0,
            },
            &mut lrng,
        );
        for p in &mut lora.params {
            if p.name.ends_with(".lora_b") {
                p.value = apollo_tensor::Matrix::randn(p.value.rows(), p.value.cols(), &mut lrng);
            }
        }
        apollo_nn::LoraAdapter::from_model(&lora).expect("LoRA source model")
    };
    let (adapter_secs, adapter_tokens) = time_adapter_decode(&model, &adapter, &prompt, t);
    let adapter_tps = DECODE_TOKENS as f64 / adapter_secs;
    let adapter_relative = adapter_tps / kv_tps;
    eprintln!(
        "[infer] adapter decode   {adapter_tps:9.1} tok/s  (vs base {adapter_relative:.2}x, rank {})",
        adapter.rank()
    );
    assert_eq!(
        adapter_tokens.len(),
        DECODE_TOKENS,
        "adapter decode truncated"
    );
    assert_ne!(
        adapter_tokens, kv_tokens,
        "a nonzero adapter delta must change the decoded tokens"
    );

    let (naive_secs, naive_tokens) = time_naive_decode(&model, &prompt, t);
    let naive_tps = DECODE_TOKENS as f64 / naive_secs;
    let kv_speedup = kv_tps / naive_tps;
    eprintln!("[infer] naive decode     {naive_tps:9.1} tok/s  (kv speedup {kv_speedup:.2}x)");
    assert_eq!(
        kv_tokens, naive_tokens,
        "KV-cached and full-recompute decode must emit identical tokens"
    );

    let reqs = batch_requests(cfg.vocab_size);
    let total_tokens: usize = reqs.iter().map(|r| r.cfg.max_new_tokens).sum();
    let (serial_secs, serial_outs) = time_serial(&model, &reqs, t);
    let serial_tps = total_tokens as f64 / serial_secs;
    let (batched_secs, batched_outs) = time_batched(&model, &reqs, t);
    let batched_tps = total_tokens as f64 / batched_secs;
    let batch_speedup = batched_tps / serial_tps;
    eprintln!(
        "[infer] serial gen       {serial_tps:9.1} tok/s ({BATCH_REQUESTS} requests x 32 tokens)"
    );
    eprintln!(
        "[infer] batched gen      {batched_tps:9.1} tok/s  (batch speedup {batch_speedup:.2}x)"
    );
    assert_eq!(
        batched_outs, serial_outs,
        "continuous batching must emit byte-identical tokens to serial"
    );

    let entry = |metric: &str, value: f64, unit: &str| InferEntry {
        metric: metric.to_string(),
        value,
        unit: unit.to_string(),
    };
    let mut report = InferReport {
        model: cfg.name.to_string(),
        threads: current_threads(),
        mode,
        numerics: NumericsMode::Exact.name().to_string(),
        simd_tier: simd_tier().name().to_string(),
        prompt_tokens: PROMPT_TOKENS,
        decode_tokens: DECODE_TOKENS,
        batch_requests: BATCH_REQUESTS,
        entries: vec![
            entry("prefill_tok_per_sec", prefill_tps, "tok/s"),
            entry("kv_decode_tok_per_sec", kv_tps, "tok/s"),
            entry("fast_kv_decode_tok_per_sec", fast_tps, "tok/s"),
            entry("int8_decode_tok_per_sec", int8_tps, "tok/s"),
            entry("int8_decode_speedup", int8_speedup, "x"),
            entry("adapter_decode_tok_per_sec", adapter_tps, "tok/s"),
            entry("adapter_decode_relative", adapter_relative, "x"),
            entry("naive_decode_tok_per_sec", naive_tps, "tok/s"),
            entry("kv_speedup", kv_speedup, "x"),
            entry("serial_gen_tok_per_sec", serial_tps, "tok/s"),
            entry("batched_gen_tok_per_sec", batched_tps, "tok/s"),
            entry("batch_speedup", batch_speedup, "x"),
        ],
    };
    let path = std::path::Path::new(&out_dir).join("BENCH_infer.json");
    if merge {
        if let Some(prev) = std::fs::read_to_string(&path)
            .ok()
            .and_then(|d| serde_json::from_str::<InferReport>(&d).ok())
        {
            report.merge_best(&prev);
        }
    }
    let data = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, data).expect("write bench json");
    eprintln!("[saved {}]", path.display());
}
