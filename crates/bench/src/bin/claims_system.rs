//! §5.3 headline claims: LLaMA-13B with naive DDP on one A100-80G
//! (APOLLO-Mini), and LLaMA-7B under 12 GB (Q-APOLLO-Mini), each with its
//! AdamW counterfactual.

use apollo_bench::{print_table, write_json};
use apollo_sysmodel::claims;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    claim: String,
    required_gib: f64,
    capacity_gib: f64,
    holds: bool,
}

fn main() {
    let results = claims::all_claims();
    let rows: Vec<Row> = results
        .iter()
        .map(|c| Row {
            claim: c.claim.clone(),
            required_gib: c.required_gib,
            capacity_gib: c.capacity_gib,
            holds: c.holds,
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.claim.clone(),
                format!("{:.1}", r.required_gib),
                format!("{:.1}", r.capacity_gib),
                if r.holds {
                    "HOLDS".into()
                } else {
                    "fails".into()
                },
            ]
        })
        .collect();
    print_table(
        "§5.3 system claims",
        &["Claim", "Required (GiB)", "Capacity (GiB)", "Verdict"],
        &table,
    );
    write_json("claims_system", &rows);
}
