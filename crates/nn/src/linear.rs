//! Linear layers with pluggable parameterizations (dense / LoRA / factored).

use apollo_autograd::{Graph, NodeId};
use apollo_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::param::{Param, ParamKind};

/// How a linear layer's weight is parameterized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinearMode {
    /// Full-rank trainable weight `W` (`y = x·W`).
    Dense,
    /// Frozen backbone plus trainable low-rank adapter:
    /// `y = x·W₀ + (x·A)·B · (alpha / rank)`.
    ///
    /// `A: in × r` (Gaussian init), `B: r × out` (zero init), so the adapter
    /// starts as the identity-of-backbone, as in Hu et al. (2021).
    LoRa {
        /// Adapter rank.
        rank: usize,
        /// LoRA scaling numerator (effective scale is `alpha / rank`).
        alpha: f32,
    },
    /// Fully factored weight `W = U·V` with both factors trained — the
    /// "Low-Rank" pre-training baseline of Table 2.
    Factored {
        /// Factorization rank.
        rank: usize,
    },
}

/// A linear layer holding indices into the model's flat parameter list.
#[derive(Debug, Clone)]
pub struct Linear {
    mode: LinearMode,
    in_dim: usize,
    out_dim: usize,
    /// Dense weight or frozen LoRA backbone.
    w0: Option<usize>,
    /// LoRA `A` / factored `U`.
    a: Option<usize>,
    /// LoRA `B` / factored `V`.
    b: Option<usize>,
}

impl Linear {
    /// Creates the layer's parameters (pushed onto `params`) and returns the
    /// layer. Dense weights use `N(0, 1/√in)` init.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        mode: LinearMode,
        params: &mut Vec<Param>,
        rng: &mut Rng,
    ) -> Self {
        let std = 1.0 / (in_dim as f32).sqrt();
        let mut layer = Linear {
            mode,
            in_dim,
            out_dim,
            w0: None,
            a: None,
            b: None,
        };
        match mode {
            LinearMode::Dense => {
                params.push(Param::new(
                    name,
                    Matrix::randn_scaled(in_dim, out_dim, std, rng),
                    ParamKind::Projectable,
                ));
                layer.w0 = Some(params.len() - 1);
            }
            LinearMode::LoRa { rank, .. } => {
                assert!(rank > 0, "LoRA rank must be positive");
                params.push(Param::frozen(
                    format!("{name}.base"),
                    Matrix::randn_scaled(in_dim, out_dim, std, rng),
                    ParamKind::Projectable,
                ));
                layer.w0 = Some(params.len() - 1);
                params.push(Param::new(
                    format!("{name}.lora_a"),
                    Matrix::randn_scaled(in_dim, rank, std, rng),
                    ParamKind::Projectable,
                ));
                layer.a = Some(params.len() - 1);
                params.push(Param::new(
                    format!("{name}.lora_b"),
                    Matrix::zeros(rank, out_dim),
                    ParamKind::Projectable,
                ));
                layer.b = Some(params.len() - 1);
            }
            LinearMode::Factored { rank } => {
                assert!(rank > 0, "factored rank must be positive");
                let stdr = 1.0 / (rank as f32).sqrt();
                params.push(Param::new(
                    format!("{name}.u"),
                    Matrix::randn_scaled(in_dim, rank, std, rng),
                    ParamKind::Projectable,
                ));
                layer.a = Some(params.len() - 1);
                params.push(Param::new(
                    format!("{name}.v"),
                    Matrix::randn_scaled(rank, out_dim, stdr, rng),
                    ParamKind::Projectable,
                ));
                layer.b = Some(params.len() - 1);
            }
        }
        layer
    }

    /// Records the forward computation `y = x·W_effective` on the graph.
    ///
    /// `pnodes` maps parameter index → graph node, as produced by the model
    /// at the start of each step.
    pub fn forward(&self, g: &mut Graph, x: NodeId, pnodes: &[NodeId]) -> NodeId {
        match self.mode {
            LinearMode::Dense => g.matmul(x, pnodes[self.w0.unwrap()]),
            LinearMode::LoRa { rank, alpha } => {
                let base = g.matmul(x, pnodes[self.w0.unwrap()]);
                let xa = g.matmul(x, pnodes[self.a.unwrap()]);
                let xab = g.matmul(xa, pnodes[self.b.unwrap()]);
                let scaled = g.scale(xab, alpha / rank as f32);
                g.add(base, scaled)
            }
            LinearMode::Factored { .. } => {
                let xu = g.matmul(x, pnodes[self.a.unwrap()]);
                g.matmul(xu, pnodes[self.b.unwrap()])
            }
        }
    }

    /// Tape-free forward `y = x·W_effective` against the raw parameter
    /// values, for the incremental decode path. Performs the same matrix
    /// products in the same order as [`Linear::forward`], so the result is
    /// bit-identical to the graph forward on the same rows.
    pub(crate) fn forward_nograd(&self, x: &Matrix, params: &[Param]) -> Matrix {
        match self.mode {
            LinearMode::Dense => x.matmul(&params[self.w0.unwrap()].value),
            LinearMode::LoRa { rank, alpha } => {
                let base = x.matmul(&params[self.w0.unwrap()].value);
                let xa = x.matmul(&params[self.a.unwrap()].value);
                let xab = xa.matmul(&params[self.b.unwrap()].value);
                let scaled = xab.scale(alpha / rank as f32);
                base.add(&scaled)
            }
            LinearMode::Factored { .. } => {
                let xu = x.matmul(&params[self.a.unwrap()].value);
                xu.matmul(&params[self.b.unwrap()].value)
            }
        }
    }

    /// Materializes the effective dense weight `W_effective` (`in × out`)
    /// regardless of parameterization — the matrix [`Linear::forward`]
    /// multiplies by. Used to quantize a trained model for INT8 decode.
    pub fn effective_weight(&self, params: &[Param]) -> Matrix {
        match self.mode {
            LinearMode::Dense => params[self.w0.unwrap()].value.clone(),
            LinearMode::LoRa { rank, alpha } => {
                let mut w = params[self.w0.unwrap()].value.clone();
                let delta = params[self.a.unwrap()]
                    .value
                    .matmul(&params[self.b.unwrap()].value);
                w.axpy(alpha / rank as f32, &delta);
                w
            }
            LinearMode::Factored { .. } => params[self.a.unwrap()]
                .value
                .matmul(&params[self.b.unwrap()].value),
        }
    }

    /// Replaces a dense layer's weight in place (used to build dequantized
    /// oracle models for the quantized-decode tolerance tests).
    ///
    /// # Panics
    ///
    /// Panics unless the layer is [`LinearMode::Dense`] and `w` has the
    /// layer's shape.
    pub fn overwrite_dense(&self, params: &mut [Param], w: Matrix) {
        assert!(
            matches!(self.mode, LinearMode::Dense),
            "overwrite_dense requires a dense layer"
        );
        assert_eq!(w.shape(), (self.in_dim, self.out_dim), "weight shape");
        params[self.w0.unwrap()].value = w;
    }

    /// Merges the LoRA adapter into the backbone and re-initializes the
    /// adapter (ReLoRA's periodic merge). No-op for other modes.
    pub fn merge_adapter(&self, params: &mut [Param], rng: &mut Rng) {
        if let LinearMode::LoRa { rank, alpha } = self.mode {
            let a = params[self.a.unwrap()].value.clone();
            let b = params[self.b.unwrap()].value.clone();
            let delta = a.matmul(&b);
            params[self.w0.unwrap()]
                .value
                .axpy(alpha / rank as f32, &delta);
            let std = 1.0 / (self.in_dim as f32).sqrt();
            params[self.a.unwrap()].value = Matrix::randn_scaled(self.in_dim, rank, std, rng);
            params[self.b.unwrap()].value = Matrix::zeros(rank, self.out_dim);
        }
    }

    /// For a LoRA layer, the parameter indices of `A` and `B` plus the
    /// effective scale `alpha / rank`; `None` for other modes. Lets the
    /// adapter extractor ([`crate::adapter::LoraAdapter::from_model`]) walk
    /// the low-rank factors without duplicating the layout.
    pub(crate) fn lora_indices(&self) -> Option<(usize, usize, f32)> {
        match self.mode {
            LinearMode::LoRa { rank, alpha } => {
                Some((self.a.unwrap(), self.b.unwrap(), alpha / rank as f32))
            }
            _ => None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The parameterization mode.
    pub fn mode(&self) -> LinearMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forward_once(layer: &Linear, params: &[Param], x: &Matrix) -> Matrix {
        let mut g = Graph::new();
        let pnodes: Vec<NodeId> = params.iter().map(|p| g.param(p.value.clone())).collect();
        let xid = g.input(x.clone());
        let y = layer.forward(&mut g, xid, &pnodes);
        g.value(y).clone()
    }

    #[test]
    fn dense_forward_is_plain_matmul() {
        let mut rng = Rng::seed_from_u64(40);
        let mut params = Vec::new();
        let lin = Linear::new("w", 4, 3, LinearMode::Dense, &mut params, &mut rng);
        let x = Matrix::randn(2, 4, &mut rng);
        let y = forward_once(&lin, &params, &x);
        let expect = x.matmul(&params[0].value);
        assert_eq!(y, expect);
    }

    #[test]
    fn lora_starts_equal_to_backbone() {
        let mut rng = Rng::seed_from_u64(41);
        let mut params = Vec::new();
        let lin = Linear::new(
            "w",
            4,
            3,
            LinearMode::LoRa {
                rank: 2,
                alpha: 8.0,
            },
            &mut params,
            &mut rng,
        );
        let x = Matrix::randn(2, 4, &mut rng);
        let y = forward_once(&lin, &params, &x);
        let expect = x.matmul(&params[0].value);
        for (a, b) in y.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-6, "adapter must start at zero");
        }
        assert!(!params[0].trainable, "backbone frozen");
        assert!(params[1].trainable && params[2].trainable);
    }

    #[test]
    fn factored_matches_explicit_product() {
        let mut rng = Rng::seed_from_u64(42);
        let mut params = Vec::new();
        let lin = Linear::new(
            "w",
            5,
            4,
            LinearMode::Factored { rank: 2 },
            &mut params,
            &mut rng,
        );
        let x = Matrix::randn(3, 5, &mut rng);
        let y = forward_once(&lin, &params, &x);
        let expect = x.matmul(&params[0].value.matmul(&params[1].value));
        for (a, b) in y.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn merge_adapter_preserves_function_and_resets() {
        let mut rng = Rng::seed_from_u64(43);
        let mut params = Vec::new();
        let lin = Linear::new(
            "w",
            4,
            4,
            LinearMode::LoRa {
                rank: 2,
                alpha: 4.0,
            },
            &mut params,
            &mut rng,
        );
        // Give the adapter a nonzero B so the merge actually moves weight.
        params[2].value = Matrix::randn(2, 4, &mut rng);
        let x = Matrix::randn(3, 4, &mut rng);
        let before = forward_once(&lin, &params, &x);
        lin.merge_adapter(&mut params, &mut rng);
        let after = forward_once(&lin, &params, &x);
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!(
                (a - b).abs() < 1e-4,
                "merge changed the function: {a} vs {b}"
            );
        }
        assert!(params[2].value.fro_norm() == 0.0, "B must reset to zero");
    }
}
