//! The deterministic PBT driver: train the population concurrently, rank
//! at round boundaries, clone leaders over the bottom quantile, perturb,
//! repeat.
//!
//! # Determinism contract
//!
//! Two runs with the same [`SearchConfig`] produce byte-identical
//! [`FrontierReport`] JSON and identical trace-event sequences, because:
//!
//! - members train on worker threads, but every kernel is bit-identical
//!   regardless of thread count (the tensor crate's partitioning
//!   invariant, pinned per member by [`ThreadOverrideGuard`]);
//! - all ranking, cloning, mutation, and trace emission happen on the
//!   driver thread, in member-slot order;
//! - mutation RNGs are derived from `(seed, round, member)` alone, and
//!   projector reseeds stay position-derived inside the optimizer, so a
//!   restored clone replays exactly;
//! - the report carries no wall-clock fields.

use std::thread;

use apollo_obs::{Obs, TraceEvent};
use apollo_tensor::{Rng, ThreadOverrideGuard};

use crate::genome::Genome;
use crate::member::Member;
use crate::report::{
    BaselineEntry, BestEntry, FrontierReport, LineageEvent, MemberReport, RoundReport,
};

pub use apollo_nn::ModelConfig;

/// Everything a search run needs. All fields are plain values so configs
/// can be logged and reports replayed.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Proxy model every member trains.
    pub model: ModelConfig,
    /// Population size (≥ 2 for exploitation to act).
    pub population: usize,
    /// Exploit/explore rounds.
    pub rounds: usize,
    /// Optimizer steps per round.
    pub round_steps: usize,
    /// Bottom fraction replaced at each boundary (clamped to at least one
    /// member and at most half the population).
    pub quantile: f32,
    /// Master seed: model init, data streams, and mutation draws all
    /// derive from it.
    pub seed: u64,
    /// Worker threads pinned per member while its segment trains.
    pub threads_per_member: usize,
    /// Sequences per training batch.
    pub batch: usize,
    /// Held-out sequences per evaluation (must be > 0).
    pub eval_seqs: usize,
    /// Also train the static fig4 grid straight through the same step
    /// budget, for the evolved-vs-static comparison.
    pub baseline: bool,
}

impl SearchConfig {
    /// A small smoke configuration on the test-tiny proxy model.
    pub fn tiny(seed: u64) -> SearchConfig {
        SearchConfig {
            model: ModelConfig::test_tiny(),
            population: 4,
            rounds: 2,
            round_steps: 5,
            quantile: 0.25,
            seed,
            threads_per_member: 1,
            batch: 4,
            eval_seqs: 8,
            baseline: false,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.population == 0 {
            return Err("population must be at least 1".into());
        }
        if self.rounds == 0 || self.round_steps == 0 {
            return Err("rounds and round-steps must be positive".into());
        }
        if !(0.0..=0.5).contains(&self.quantile) {
            return Err(format!("quantile {} outside [0, 0.5]", self.quantile));
        }
        if self.eval_seqs == 0 {
            return Err("eval-seqs must be positive (members are ranked by eval ppl)".into());
        }
        if self.batch == 0 {
            return Err("batch must be positive".into());
        }
        Ok(())
    }

    /// Total optimizer steps each member takes.
    pub fn total_steps(&self) -> usize {
        self.rounds * self.round_steps
    }
}

/// Mutation RNG for `(seed, round, member)` — decoupled from everything
/// else so population size and thread count never shift the draws.
fn mutation_rng(seed: u64, round: usize, member: usize) -> Rng {
    Rng::seed_from_u64(seed ^ (((round as u64 + 1) << 32) | member as u64))
}

/// Trains each member one segment and evaluates it, concurrently — one
/// worker thread per member, each pinned to `threads_per_member` kernel
/// threads.
fn train_round(members: &mut [Member], cfg: &SearchConfig) {
    let total = cfg.total_steps();
    thread::scope(|s| {
        for m in members.iter_mut() {
            s.spawn(move || {
                let _pin = ThreadOverrideGuard::new(cfg.threads_per_member.max(1));
                m.train_segment(cfg.round_steps, total);
                m.eval(cfg.eval_seqs);
            });
        }
    });
}

/// Member indices sorted best-first: ascending perplexity, ties broken by
/// slot so ranking is total and deterministic.
fn rank(members: &[Member]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by(|&a, &b| {
        members[a]
            .last_ppl
            .total_cmp(&members[b].last_ppl)
            .then(a.cmp(&b))
    });
    order
}

/// Runs the full population-based search and returns its frontier report.
/// Deterministic given `cfg` (see the module docs for the contract).
pub fn run_search(cfg: &SearchConfig, obs: &Obs) -> Result<FrontierReport, String> {
    cfg.validate()?;
    let grid = Genome::static_grid(&cfg.model);
    let mut members: Vec<Member> = (0..cfg.population)
        .map(|i| {
            // Cycle the static grid; extra members explore a hotter LR so
            // large populations start spread out instead of duplicated.
            let mut g = grid[i % grid.len()].clone();
            for _ in 0..(i / grid.len()) {
                g.peak_lr = (g.peak_lr * 1.25).clamp(1e-4, 0.3);
            }
            Member::new(i, g, cfg)
        })
        .collect();

    obs.set_step(0);
    for m in &members {
        obs.emit(|| TraceEvent::MemberEvent {
            step: 0,
            member: m.id,
            event: "start".to_string(),
            source: m.id,
            ppl: 0.0,
        });
    }

    let mut rounds_log = Vec::with_capacity(cfg.rounds);
    let mut lineage = Vec::new();
    for round in 0..cfg.rounds {
        train_round(&mut members, cfg);
        let step = (round + 1) * cfg.round_steps;
        obs.set_step(step);
        obs.counter("search.rounds", 1);
        obs.counter("search.evals", members.len() as u64);
        obs.counter(
            "search.member_steps",
            (cfg.round_steps * members.len()) as u64,
        );

        let order = rank(&members);
        let best = order[0];
        let worst = *order.last().expect("population is non-empty");
        // Replacements happen at every boundary except the last (nothing
        // would train after a final-round clone).
        let n_replace = if round + 1 < cfg.rounds {
            (((cfg.population as f32) * cfg.quantile).floor() as usize)
                .max(1)
                .min(cfg.population / 2)
        } else {
            0
        };
        obs.emit(|| TraceEvent::SearchRound {
            step,
            round,
            population: cfg.population,
            best_member: best,
            best_ppl: members[best].last_ppl,
            worst_ppl: members[worst].last_ppl,
            cloned: n_replace,
        });
        rounds_log.push(RoundReport {
            round,
            step,
            best_member: best,
            best_ppl: members[best].last_ppl,
            members: members
                .iter()
                .map(|m| MemberReport {
                    member: m.id,
                    genome: m.genome.clone(),
                    ppl: m.last_ppl,
                })
                .collect(),
        });

        for j in 0..n_replace {
            let loser = order[cfg.population - 1 - j];
            let leader = order[j];
            let donor = members[leader].genome.clone();
            let blob = members[leader]
                .snapshot()
                .map_err(|e| format!("snapshot of member {leader} failed: {e}"))?;
            let ppl_before = members[loser].last_ppl;
            obs.emit(|| TraceEvent::MemberEvent {
                step,
                member: loser,
                event: "clone".to_string(),
                source: leader,
                ppl: ppl_before,
            });
            let mut rng = mutation_rng(cfg.seed, round, loser);
            let (mutated, changes) = donor.mutate(&mut rng, &cfg.model);
            obs.emit(|| TraceEvent::MemberEvent {
                step,
                member: loser,
                event: "perturb".to_string(),
                source: loser,
                ppl: ppl_before,
            });
            obs.counter("search.clones", 1);
            obs.counter("search.perturbations", changes.len() as u64);
            let (child, outcome) = Member::restore(loser, &blob, &donor, mutated, cfg)
                .map_err(|e| format!("restore of member {loser} failed: {e}"))?;
            members[loser] = child;
            lineage.push(LineageEvent {
                round,
                member: loser,
                source: leader,
                ppl_before,
                changes,
                optimizer_state: outcome.to_string(),
            });
        }
    }

    let order = rank(&members);
    let winner = &members[order[0]];
    for m in &members {
        obs.emit(|| TraceEvent::MemberEvent {
            step: cfg.total_steps(),
            member: m.id,
            event: "finish".to_string(),
            source: m.id,
            ppl: m.last_ppl,
        });
    }

    let baseline = if cfg.baseline {
        run_baseline(cfg, &grid)
    } else {
        Vec::new()
    };

    let report = FrontierReport {
        model: cfg.model.name.clone(),
        population: cfg.population,
        rounds: cfg.rounds,
        round_steps: cfg.round_steps,
        quantile: cfg.quantile,
        seed: cfg.seed,
        rounds_log,
        lineage,
        best: BestEntry {
            member: winner.id,
            genome: winner.genome.clone(),
            ppl: winner.last_ppl,
        },
        baseline,
    };
    if let Err(e) = obs.flush() {
        eprintln!("warning: trace flush failed ({e})");
    }
    Ok(report)
}

/// Trains each static-grid genome straight through the same step budget
/// (same model init, same data stream) for the evolved-vs-static table.
fn run_baseline(cfg: &SearchConfig, grid: &[Genome]) -> Vec<BaselineEntry> {
    let mut runs: Vec<Member> = grid
        .iter()
        .enumerate()
        .map(|(i, g)| Member::new(i, g.clone(), cfg))
        .collect();
    let total = cfg.total_steps();
    thread::scope(|s| {
        for m in runs.iter_mut() {
            s.spawn(move || {
                let _pin = ThreadOverrideGuard::new(cfg.threads_per_member.max(1));
                m.train_segment(total, total);
                m.eval(cfg.eval_seqs);
            });
        }
    });
    runs.iter()
        .map(|m| BaselineEntry {
            label: m.genome.label(),
            genome: m.genome.clone(),
            ppl: m.last_ppl,
        })
        .collect()
}
