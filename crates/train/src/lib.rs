//! Training loops, learning-rate schedules, and evaluation for the APOLLO
//! reproduction.
//!
//! [`pretrain`] runs the paper's pre-training recipe (linear warmup over the
//! first 10% of steps, cosine decay to 10% of the peak LR, validation
//! perplexity every `eval_every` steps) with any [`apollo_optim::Optimizer`].
//! [`finetune`] runs the sequence-classification fine-tuning protocol of
//! Tables 4–5 and reports accuracy. Both return serializable [`RunLog`] /
//! [`FinetuneResult`] records that the bench harness writes as JSON.
//!
//! # Example
//!
//! ```no_run
//! use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
//! use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
//! use apollo_optim::Apollo;
//! use apollo_tensor::Rng;
//! use apollo_train::{pretrain, TrainConfig};
//!
//! let cfg = ModelConfig::tiny_60m();
//! let mut rng = Rng::seed_from_u64(0);
//! let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
//! let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
//! let mut batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
//! let mut opt = Apollo::new(cfg.default_rank(), 200);
//! let log = pretrain(&mut model, &mut opt, &mut batcher, &TrainConfig::quick(100));
//! println!("final ppl {}", log.final_ppl);
//! ```

mod checkpoint;
mod ddp;
mod finetune;
pub mod resilience;
mod schedule;
mod trainer;

pub use checkpoint::{
    checkpoint_file_name, crc32, latest_valid_checkpoint, load_model, load_train_state,
    prune_checkpoints, save_model, save_train_state, train_state_blob, TrainMeta, TrainState,
};
pub use ddp::{pretrain_ddp, DdpConfig, DdpReport, DdpRunLog, OptimizerFactory};
pub use finetune::{finetune, FinetuneConfig, FinetuneResult};
pub use resilience::{
    FaultKind, FaultPlan, RecoveryPolicy, ResilienceConfig, ResilienceReport, SpikeDetector,
};
pub use schedule::LrSchedule;
pub use trainer::{
    eval_perplexity, pretrain, pretrain_observed, pretrain_resilient, RunLog, TrainConfig,
};
