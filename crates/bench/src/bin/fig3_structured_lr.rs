//! Fig. 3: element-wise vs channel-wise learning-rate adaptation, with and
//! without the norm-growth limiter, on the 130M proxy.
//!
//! Reproduction targets: (i) channel-wise matches (or slightly beats)
//! element-wise AdamW; (ii) the limiter removes the early-training loss
//! spikes of the structured rule.
//!
//! Each run streams a JSONL trace (`results/fig3_trace_<method>.jsonl`);
//! the limiter-clip column and the sanity checks below are read back from
//! those traces rather than recomputed in-process.

use apollo_bench::{pretrain_run_observed, print_table, results_dir, scaled, write_json, Method};
use apollo_nn::ModelConfig;
use apollo_obs::{read_trace, Obs, TraceEvent};
use apollo_train::RunLog;
use std::path::{Path, PathBuf};

fn early_spike(log: &RunLog) -> f32 {
    // Largest upward jump between consecutive loss samples in the first
    // third of training.
    let n = log.train_losses.len() / 3;
    log.train_losses
        .windows(2)
        .take(n.max(2))
        .map(|w| w[1].1 - w[0].1)
        .fold(0.0f32, f32::max)
}

fn trace_path(label: &str) -> PathBuf {
    let slug: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    results_dir().join(format!("fig3_trace_{slug}.jsonl"))
}

/// Per-run facts recovered from the trace instead of the in-process log.
struct TraceFacts {
    limiter_clips: usize,
    max_clip_ratio: f32,
    sampled_steps: usize,
}

fn read_facts(path: &Path) -> TraceFacts {
    let events = read_trace(path).expect("fig3 trace must parse");
    let mut facts = TraceFacts {
        limiter_clips: 0,
        max_clip_ratio: 0.0,
        sampled_steps: 0,
    };
    for e in &events {
        match e {
            TraceEvent::LimiterClip { ratio, .. } => {
                facts.limiter_clips += 1;
                facts.max_clip_ratio = facts.max_clip_ratio.max(*ratio);
            }
            TraceEvent::StepMetrics { loss, .. } => {
                assert!(loss.is_finite(), "trace recorded a non-finite loss");
                facts.sampled_steps += 1;
            }
            _ => {}
        }
    }
    facts
}

fn main() {
    let cfg = ModelConfig::tiny_130m();
    let steps = scaled(400);
    let methods = [
        Method::AdamWElementwise,
        Method::AdamWChannelwise { limiter: false },
        Method::AdamWChannelwise { limiter: true },
    ];
    let mut logs = Vec::new();
    let mut facts = Vec::new();
    for m in methods {
        eprintln!("[fig3] {} ...", m.label());
        let path = trace_path(m.label());
        let obs = Obs::with_trace(&path, 1).expect("open fig3 trace");
        logs.push(pretrain_run_observed(&cfg, m, steps, 4, 42, None, &obs));
        drop(obs);
        facts.push(read_facts(&path));
    }
    let rows: Vec<Vec<String>> = logs
        .iter()
        .zip(&facts)
        .map(|(l, f)| {
            vec![
                l.optimizer.clone(),
                format!("{:.2}", l.final_ppl),
                format!("{:.3}", early_spike(l)),
                format!("{:.2}", l.train_losses.last().unwrap().1),
                if f.limiter_clips > 0 {
                    format!("{} (max {:.2}x)", f.limiter_clips, f.max_clip_ratio)
                } else {
                    "0".to_string()
                },
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 3 — structured LR adaptation ({}, {} steps)",
            cfg.name, steps
        ),
        &[
            "Method",
            "Val ppl",
            "Max early loss jump",
            "Final train loss",
            "Limiter clips",
        ],
        &rows,
    );
    // The limiter column is only meaningful if the traces actually sampled
    // every step; fail loudly if the probe went blind.
    for (l, f) in logs.iter().zip(&facts) {
        assert!(
            f.sampled_steps >= steps,
            "{}: trace sampled {} of {} steps",
            l.optimizer,
            f.sampled_steps,
            steps
        );
    }
    println!(
        "\nPaper shape: channel-wise ≤ element-wise ppl; limiter suppresses the early spike \
         and improves further (24.11 < 24.43 < 25.08 at paper scale)."
    );
    write_json("fig3_structured_lr", &logs);
}
