//! Property-based tests for the data substrates.

use apollo_data::{
    BpeTokenizer, ByteTokenizer, CorpusConfig, LmBatcher, SyntheticCorpus, TaskConfig, TaskGen,
    Tokenize,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn corpus_tokens_always_in_vocab(vocab in 8usize..256, stream in any::<u64>()) {
        let c = SyntheticCorpus::new(CorpusConfig::with_vocab(vocab));
        prop_assert!(c.generate(500, stream).iter().all(|&t| (t as usize) < vocab));
    }

    #[test]
    fn batcher_targets_are_shifted_tokens(batch in 1usize..6, seq in 2usize..32, _x in 0..3u8) {
        let c = SyntheticCorpus::new(CorpusConfig::with_vocab(64));
        let mut b = LmBatcher::new(c, batch, seq);
        let (tokens, targets) = b.next_batch();
        for s in 0..batch {
            for i in 0..seq - 1 {
                prop_assert_eq!(targets[s * seq + i], tokens[s * seq + i + 1]);
            }
        }
    }

    #[test]
    fn byte_tokenizer_roundtrips(text in proptest::collection::vec(any::<u8>(), 0..256)) {
        let t = ByteTokenizer;
        prop_assert_eq!(t.decode(&t.encode(&text)), text);
    }

    #[test]
    fn bpe_roundtrips_any_input(
        sample in proptest::collection::vec(any::<u8>(), 8..256),
        text in proptest::collection::vec(any::<u8>(), 0..128),
        extra in 0usize..64,
    ) {
        let tok = BpeTokenizer::train(&sample, 256 + extra);
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    #[test]
    fn bpe_never_expands_token_count(sample in proptest::collection::vec(any::<u8>(), 8..200)) {
        let tok = BpeTokenizer::train(&sample, 300);
        prop_assert!(tok.encode(&sample).len() <= sample.len());
    }

    #[test]
    fn task_labels_in_range_and_tokens_in_vocab(
        classes in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut t = TaskGen::new(TaskConfig {
            name: "prop".into(),
            n_classes: classes,
            vocab_size: 128,
            seq: 24,
            true_markers: 4,
            distractors: 1,
            seed,
        });
        let (tokens, labels) = t.sample(16);
        prop_assert!(labels.iter().all(|&l| (l as usize) < classes));
        prop_assert!(tokens.iter().all(|&x| (x as usize) < 128));
        prop_assert_eq!(tokens.len(), 16 * 24);
    }
}

#[test]
fn different_streams_cover_the_vocabulary() {
    // Across many streams, most of a small vocabulary appears — the corpus
    // is not collapsing onto a few tokens.
    let c = SyntheticCorpus::new(CorpusConfig::with_vocab(32));
    let mut seen = [false; 32];
    for stream in 0..20 {
        for t in c.generate(200, stream) {
            seen[t as usize] = true;
        }
    }
    let covered = seen.iter().filter(|&&s| s).count();
    assert!(covered >= 24, "only {covered}/32 tokens ever appear");
}

use apollo_data::DecodeStream;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn chunked_decode_stream_equals_whole_sequence_decode(
        sample in proptest::collection::vec(any::<u8>(), 8..256),
        text in proptest::collection::vec(any::<u8>(), 0..128),
        extra in 0usize..64,
    ) {
        // Arbitrary bytes (so invalid UTF-8 is well covered), decoded one
        // token at a time: the pushed pieces plus the final flush must
        // equal the lossy decode of the whole token sequence at once.
        let tok = BpeTokenizer::train(&sample, 256 + extra);
        let tokens = tok.encode(&text);
        let whole = String::from_utf8_lossy(&tok.decode(&tokens)).into_owned();
        let mut stream = DecodeStream::new(&tok);
        let mut chunked = String::new();
        for &t in &tokens {
            chunked.push_str(&stream.push(t));
            // An incomplete UTF-8 sequence is at most 3 bytes; the stream
            // never hoards more than that plus one token's worth of bytes.
            prop_assert!(stream.pending_len() <= 3, "held back {} bytes", stream.pending_len());
        }
        chunked.push_str(&stream.finish());
        prop_assert_eq!(chunked, whole);
    }

    #[test]
    fn decode_stream_emits_valid_text_for_valid_input(
        picks in proptest::collection::vec(0usize..8, 0..60),
    ) {
        // Valid UTF-8 in (1- to 4-byte characters), byte tokens out one at
        // a time: the concatenation reproduces the text exactly (no
        // replacement chars, no breakage).
        const PALETTE: [char; 8] = ['a', 'Z', ' ', 'é', 'ß', '日', '語', '🦀'];
        let text: String = picks.iter().map(|&i| PALETTE[i]).collect();
        let tok = ByteTokenizer;
        let mut stream = DecodeStream::new(&tok);
        let mut out = String::new();
        for t in tok.encode(text.as_bytes()) {
            out.push_str(&stream.push(t));
        }
        out.push_str(&stream.finish());
        prop_assert_eq!(out, text);
    }
}
