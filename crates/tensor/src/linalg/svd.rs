//! Singular value decomposition: one-sided Jacobi (exact, small matrices)
//! and a Halko-style randomized SVD (fast, low-rank sketches).

use crate::{Matrix, Rng};

use super::qr_thin;

/// The factors of a (thin) singular value decomposition `a = u · diag(s) · vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k`, orthonormal columns.
    pub u: Matrix,
    /// Singular values in non-increasing order, length `k`.
    pub s: Vec<f32>,
    /// Right singular vectors, `n × k`, orthonormal columns.
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs `u · diag(s) · vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let mut us = self.u.clone();
        us.scale_cols(&self.s);
        us.matmul_transb(&self.v)
    }

    /// Truncates to the top `r` singular triplets.
    pub fn truncate(&self, r: usize) -> Svd {
        let r = r.min(self.s.len());
        Svd {
            u: self.u.slice_cols(0, r),
            s: self.s[..r].to_vec(),
            v: self.v.slice_cols(0, r),
        }
    }
}

/// Computes the full thin SVD with one-sided Jacobi rotations.
///
/// Exact (to f32 round-off) but `O(min(m,n)² · max(m,n))` per sweep — use
/// [`randomized_svd`] when only a low-rank factor is needed on large inputs.
pub fn svd_jacobi(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    if m < n {
        // SVD(Aᵀ) = V Σ Uᵀ ⇒ swap factors.
        let t = svd_jacobi(&a.transpose());
        return Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        };
    }

    // Work on columns of A (m × n, m ≥ n) in f64 for convergence robustness.
    let mut w: Vec<f64> = a.as_slice().iter().map(|&x| x as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let col_dot = |w: &[f64], p: usize, q: usize| -> f64 {
        let mut acc = 0.0;
        for i in 0..m {
            acc += w[i * n + p] * w[i * n + q];
        }
        acc
    };

    let tol = 1e-12;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = col_dot(&w, p, q);
                let app = col_dot(&w, p, p);
                let aqq = col_dot(&w, q, q);
                off += apq * apq;
                if apq.abs() <= tol * (app * aqq).sqrt() {
                    continue;
                }
                // Jacobi rotation zeroing the (p, q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let wp = w[i * n + p];
                    let wq = w[i * n + q];
                    w[i * n + p] = c * wp - s * wq;
                    w[i * n + q] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[i * n + p];
                    let vq = v[i * n + q];
                    v[i * n + p] = c * vp - s * vq;
                    v[i * n + q] = s * vp + c * vq;
                }
            }
        }
        if off.sqrt() < 1e-14 {
            break;
        }
    }

    // Singular values are the column norms of the rotated A; U its
    // normalized columns.
    let mut sig: Vec<(f64, usize)> = (0..n).map(|j| (col_dot(&w, j, j).sqrt(), j)).collect();
    sig.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut vm = Matrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (out_j, &(sv, j)) in sig.iter().enumerate() {
        s.push(sv as f32);
        let inv = if sv > 1e-30 { 1.0 / sv } else { 0.0 };
        for i in 0..m {
            u.set(i, out_j, (w[i * n + j] * inv) as f32);
        }
        for i in 0..n {
            vm.set(i, out_j, v[i * n + j] as f32);
        }
    }
    Svd { u, s, v: vm }
}

/// Computes a rank-`r` truncated SVD with the randomized range-finder
/// algorithm of Halko, Martinsson & Tropp.
///
/// `oversample` extra sketch dimensions (typically 5-10) and `power_iters`
/// subspace iterations trade accuracy for time. For the gradient spectra in
/// this reproduction `oversample = 8`, `power_iters = 1` is plenty.
///
/// # Panics
///
/// Panics if `r == 0`.
pub fn randomized_svd(
    a: &Matrix,
    r: usize,
    oversample: usize,
    power_iters: usize,
    rng: &mut Rng,
) -> Svd {
    assert!(r > 0, "randomized_svd: rank must be positive");
    let (m, n) = a.shape();
    let k = (r + oversample).min(m).min(n);

    // Range finder: Y = A·Ω, Q = orth(Y).
    let omega = Matrix::randn(n, k, rng);
    let mut y = a.matmul(&omega);
    let (mut q, _) = qr_thin(&y);
    for _ in 0..power_iters {
        let z = a.matmul_transa(&q); // n × k  (Aᵀ Q)
        let (qz, _) = qr_thin(&z);
        y = a.matmul(&qz);
        let (q2, _) = qr_thin(&y);
        q = q2;
    }

    // B = Qᵀ·A is k × n; exact SVD of the small B.
    let b = q.matmul_transa(a);
    let small = svd_jacobi(&b);
    let u = q.matmul(&small.u); // m × k
    Svd {
        u: u.slice_cols(0, r.min(k)),
        s: small.s[..r.min(k)].to_vec(),
        v: small.v.slice_cols(0, r.min(k)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn jacobi_reconstructs_tall() {
        let mut rng = Rng::seed_from_u64(20);
        let a = Matrix::randn(12, 5, &mut rng);
        let f = svd_jacobi(&a);
        assert_close(&f.reconstruct(), &a, 1e-3);
    }

    #[test]
    fn jacobi_reconstructs_wide() {
        let mut rng = Rng::seed_from_u64(21);
        let a = Matrix::randn(4, 9, &mut rng);
        let f = svd_jacobi(&a);
        assert_close(&f.reconstruct(), &a, 1e-3);
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let mut rng = Rng::seed_from_u64(22);
        let a = Matrix::randn(8, 8, &mut rng);
        let f = svd_jacobi(&a);
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(f.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn u_and_v_orthonormal() {
        let mut rng = Rng::seed_from_u64(23);
        let a = Matrix::randn(10, 6, &mut rng);
        let f = svd_jacobi(&a);
        assert_close(&f.u.matmul_transa(&f.u), &Matrix::identity(6), 2e-3);
        assert_close(&f.v.matmul_transa(&f.v), &Matrix::identity(6), 2e-3);
    }

    #[test]
    fn diagonal_matrix_svd_recovers_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 0, 3.0);
        a.set(1, 1, 1.0);
        a.set(2, 2, 2.0);
        let f = svd_jacobi(&a);
        let got: Vec<f32> = f.s.clone();
        assert!((got[0] - 3.0).abs() < 1e-4);
        assert!((got[1] - 2.0).abs() < 1e-4);
        assert!((got[2] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn truncate_keeps_top_components() {
        let mut rng = Rng::seed_from_u64(24);
        let a = Matrix::randn(10, 10, &mut rng);
        let f = svd_jacobi(&a).truncate(3);
        assert_eq!(f.u.cols(), 3);
        assert_eq!(f.s.len(), 3);
        assert_eq!(f.v.cols(), 3);
    }

    #[test]
    fn randomized_svd_recovers_low_rank_matrix() {
        let mut rng = Rng::seed_from_u64(25);
        // Exactly rank-4 matrix.
        let u = Matrix::randn(40, 4, &mut rng);
        let v = Matrix::randn(30, 4, &mut rng);
        let a = u.matmul_transb(&v);
        let f = randomized_svd(&a, 4, 6, 1, &mut rng);
        let err = f.reconstruct().sub(&a).fro_norm() / a.fro_norm();
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn randomized_svd_matches_jacobi_top_values() {
        let mut rng = Rng::seed_from_u64(26);
        let a = Matrix::randn(30, 20, &mut rng);
        let exact = svd_jacobi(&a);
        let approx = randomized_svd(&a, 5, 10, 2, &mut rng);
        for i in 0..5 {
            let rel = (approx.s[i] - exact.s[i]).abs() / exact.s[i];
            assert!(rel < 0.05, "sv {i}: {} vs {}", approx.s[i], exact.s[i]);
        }
    }

    #[test]
    fn zero_matrix_svd_is_zero() {
        let f = svd_jacobi(&Matrix::zeros(5, 3));
        assert!(f.s.iter().all(|&s| s == 0.0));
    }
}
