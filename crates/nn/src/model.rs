//! The LLaMA-style decoder model.

use apollo_autograd::{Graph, NodeId};
use apollo_tensor::{Matrix, Rng};

use crate::config::ModelConfig;
use crate::linear::{Linear, LinearMode};
use crate::param::{Param, ParamKind};

/// Parameter indices of one transformer layer. `pub(crate)` so the
/// tape-free decode path ([`crate::decode`]) can walk the same layout.
#[derive(Debug, Clone)]
pub(crate) struct Layer {
    pub(crate) attn_norm: usize,
    pub(crate) wq: Linear,
    pub(crate) wk: Linear,
    pub(crate) wv: Linear,
    pub(crate) wo: Linear,
    pub(crate) mlp_norm: usize,
    pub(crate) gate: Linear,
    pub(crate) up: Linear,
    pub(crate) down: Linear,
}

/// A decoder-only transformer: embedding → N × (attention + SwiGLU) →
/// final norm → LM head.
///
/// Parameters live in a flat, named [`Param`] list so optimizers can walk
/// them uniformly; see the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct LlamaModel {
    pub(crate) cfg: ModelConfig,
    /// Flat parameter list (embedding, per-layer weights, final norm, head).
    pub params: Vec<Param>,
    pub(crate) layers: Vec<Layer>,
    pub(crate) embed: usize,
    pub(crate) final_norm: usize,
    pub(crate) head: usize,
}

impl LlamaModel {
    /// Initializes a model. `mode` selects the parameterization of the
    /// attention/MLP linear layers (embedding, norms and LM head are always
    /// dense and trainable).
    /// # Panics
    ///
    /// Panics if `hidden` does not divide into an even head dimension
    /// (required by RoPE).
    pub fn new(cfg: &ModelConfig, mode: LinearMode, rng: &mut Rng) -> Self {
        assert_eq!(cfg.hidden % cfg.n_heads, 0, "hidden must divide by n_heads");
        assert_eq!(cfg.head_dim() % 2, 0, "head_dim must be even for RoPE");
        let h = cfg.hidden;
        let mut params = Vec::new();

        params.push(Param::new(
            "embed.weight",
            Matrix::randn_scaled(cfg.vocab_size, h, 0.02, rng),
            ParamKind::Embedding,
        ));
        let embed = 0;

        let mut layers = Vec::with_capacity(cfg.n_layers);
        for l in 0..cfg.n_layers {
            let p = |s: &str| format!("layers.{l}.{s}");
            params.push(Param::new(
                p("attn_norm.gain"),
                Matrix::full(1, h, 1.0),
                ParamKind::Norm,
            ));
            let attn_norm = params.len() - 1;
            let wq = Linear::new(&p("attn.wq"), h, h, mode, &mut params, rng);
            let wk = Linear::new(&p("attn.wk"), h, h, mode, &mut params, rng);
            let wv = Linear::new(&p("attn.wv"), h, h, mode, &mut params, rng);
            let wo = Linear::new(&p("attn.wo"), h, h, mode, &mut params, rng);
            params.push(Param::new(
                p("mlp_norm.gain"),
                Matrix::full(1, h, 1.0),
                ParamKind::Norm,
            ));
            let mlp_norm = params.len() - 1;
            let gate = Linear::new(&p("mlp.gate"), h, cfg.intermediate, mode, &mut params, rng);
            let up = Linear::new(&p("mlp.up"), h, cfg.intermediate, mode, &mut params, rng);
            let down = Linear::new(&p("mlp.down"), cfg.intermediate, h, mode, &mut params, rng);
            layers.push(Layer {
                attn_norm,
                wq,
                wk,
                wv,
                wo,
                mlp_norm,
                gate,
                up,
                down,
            });
        }

        params.push(Param::new(
            "final_norm.gain",
            Matrix::full(1, h, 1.0),
            ParamKind::Norm,
        ));
        let final_norm = params.len() - 1;
        params.push(Param::new(
            "lm_head.weight",
            Matrix::randn_scaled(h, cfg.vocab_size, 1.0 / (h as f32).sqrt(), rng),
            ParamKind::Embedding,
        ));
        let head = params.len() - 1;

        LlamaModel {
            cfg: cfg.clone(),
            params,
            layers,
            embed,
            final_norm,
            head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The [`LinearMode`] the attention/MLP layers were built with
    /// ([`LinearMode::Dense`] for a model without layers).
    pub fn mode(&self) -> LinearMode {
        self.layers
            .first()
            .map_or(LinearMode::Dense, |l| l.wq.mode())
    }

    /// Total trainable parameter count.
    pub fn num_trainable(&self) -> usize {
        self.params
            .iter()
            .filter(|p| p.trainable)
            .map(Param::len)
            .sum()
    }

    /// Builds the transformer trunk up to the final RMSNorm output
    /// (`(batch·seq) × hidden`), returning the tape, the trunk output node,
    /// and one graph node per parameter.
    pub(crate) fn build_trunk(&self, tokens: &[u32], batch: usize) -> (Graph, NodeId, Vec<NodeId>) {
        assert!(
            batch > 0 && tokens.len().is_multiple_of(batch),
            "tokens must split into batch rows"
        );
        let seq = tokens.len() / batch;
        let heads = self.cfg.n_heads;
        let mut g = Graph::new();
        let pnodes: Vec<NodeId> = self
            .params
            .iter()
            .map(|p| g.param(p.value.clone()))
            .collect();

        let mut x = g.gather(pnodes[self.embed], tokens);
        for layer in &self.layers {
            let hn = g.rmsnorm(x, pnodes[layer.attn_norm], 1e-5);
            let q0 = layer.wq.forward(&mut g, hn, &pnodes);
            let k0 = layer.wk.forward(&mut g, hn, &pnodes);
            let v = layer.wv.forward(&mut g, hn, &pnodes);
            let q = g.rope(q0, seq, heads, self.cfg.rope_theta);
            let k = g.rope(k0, seq, heads, self.cfg.rope_theta);
            let att = g.causal_attention(q, k, v, batch, seq, heads);
            let o = layer.wo.forward(&mut g, att, &pnodes);
            x = g.add(x, o);

            let mn = g.rmsnorm(x, pnodes[layer.mlp_norm], 1e-5);
            let gate_pre = layer.gate.forward(&mut g, mn, &pnodes);
            let up = layer.up.forward(&mut g, mn, &pnodes);
            let act = g.swiglu(gate_pre, up);
            let mlp = layer.down.forward(&mut g, act, &pnodes);
            x = g.add(x, mlp);
        }
        let xf = g.rmsnorm(x, pnodes[self.final_norm], 1e-5);
        (g, xf, pnodes)
    }

    /// Builds the next-token LM loss graph. Returns `(graph, loss, pnodes)`.
    ///
    /// `tokens` and `targets` are `batch` concatenated sequences of equal
    /// length; targets are the next-token labels for each position.
    pub fn build_loss(
        &self,
        tokens: &[u32],
        targets: &[u32],
        batch: usize,
    ) -> (Graph, NodeId, Vec<NodeId>) {
        assert_eq!(tokens.len(), targets.len(), "one target per token");
        let (mut g, trunk, pnodes) = self.build_trunk(tokens, batch);
        let logits = g.matmul(trunk, pnodes[self.head]);
        let loss = g.cross_entropy(logits, targets);
        (g, loss, pnodes)
    }

    /// Runs a full forward+backward pass and returns the scalar loss plus
    /// per-parameter gradients (`None` for frozen or unused parameters).
    pub fn loss_and_grads(
        &mut self,
        tokens: &[u32],
        targets: &[u32],
        batch: usize,
    ) -> (f32, Vec<Option<Matrix>>) {
        let (mut g, loss, pnodes) = self.build_loss(tokens, targets, batch);
        g.backward(loss);
        let grads = self.collect_grads(&g, &pnodes);
        (g.value(loss).get(0, 0), grads)
    }

    /// Evaluation loss (no gradients).
    pub fn eval_loss(&self, tokens: &[u32], targets: &[u32], batch: usize) -> f32 {
        let (g, loss, _) = self.build_loss(tokens, targets, batch);
        g.value(loss).get(0, 0)
    }

    /// Builds a sequence-classification loss: the last-position hidden state
    /// of each sequence is decoded through the LM head and trained to emit
    /// the label token.
    pub fn build_class_loss(
        &self,
        tokens: &[u32],
        labels: &[u32],
        batch: usize,
    ) -> (Graph, NodeId, Vec<NodeId>) {
        assert_eq!(labels.len(), batch, "one label per sequence");
        let seq = tokens.len() / batch;
        let (mut g, trunk, pnodes) = self.build_trunk(tokens, batch);
        let last_rows: Vec<u32> = (0..batch).map(|b| (b * seq + seq - 1) as u32).collect();
        let pooled = g.gather(trunk, &last_rows);
        let logits = g.matmul(pooled, pnodes[self.head]);
        let loss = g.cross_entropy(logits, labels);
        (g, loss, pnodes)
    }

    /// Forward+backward for sequence classification.
    pub fn class_loss_and_grads(
        &mut self,
        tokens: &[u32],
        labels: &[u32],
        batch: usize,
    ) -> (f32, Vec<Option<Matrix>>) {
        let (mut g, loss, pnodes) = self.build_class_loss(tokens, labels, batch);
        g.backward(loss);
        let grads = self.collect_grads(&g, &pnodes);
        (g.value(loss).get(0, 0), grads)
    }

    /// Predicted label token for each sequence (argmax over the vocabulary).
    pub fn classify(&self, tokens: &[u32], batch: usize) -> Vec<u32> {
        let seq = tokens.len() / batch;
        let (mut g, trunk, pnodes) = self.build_trunk(tokens, batch);
        let last_rows: Vec<u32> = (0..batch).map(|b| (b * seq + seq - 1) as u32).collect();
        let pooled = g.gather(trunk, &last_rows);
        let logits = g.matmul(pooled, pnodes[self.head]);
        let lm = g.value(logits);
        (0..batch)
            .map(|b| {
                let row = lm.row(b);
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best as u32
            })
            .collect()
    }

    /// Collects per-parameter gradients from a backward-completed graph
    /// (`None` for frozen or unused parameters). Public so training loops
    /// can time the forward ([`LlamaModel::build_loss`]) and backward
    /// passes separately instead of going through
    /// [`LlamaModel::loss_and_grads`].
    pub fn collect_grads(&self, g: &Graph, pnodes: &[NodeId]) -> Vec<Option<Matrix>> {
        self.params
            .iter()
            .zip(pnodes)
            .map(|(p, &id)| {
                if p.trainable {
                    g.try_grad(id).cloned()
                } else {
                    None
                }
            })
            .collect()
    }

    /// Builds a LoRA copy of a *dense* model: every attention/MLP linear
    /// becomes a frozen backbone (holding this model's trained weight) plus
    /// a fresh rank-`rank` adapter; embeddings, norms and the LM head are
    /// copied as-is and stay trainable. This is the fine-tuning setup of
    /// Tables 4–5.
    ///
    /// # Panics
    ///
    /// Panics if this model is not dense.
    pub fn to_lora(&self, rank: usize, alpha: f32, rng: &mut Rng) -> LlamaModel {
        assert!(
            self.layers.iter().all(|l| l.wq.mode() == LinearMode::Dense),
            "to_lora requires a dense source model"
        );
        let mut lora = LlamaModel::new(&self.cfg, LinearMode::LoRa { rank, alpha }, rng);
        for src in &self.params {
            // Dense linear weights land in the `.base` backbone params; all
            // other names match one-to-one.
            let target_name = format!("{}.base", src.name);
            let target = lora
                .params
                .iter_mut()
                .find(|p| p.name == src.name || p.name == target_name)
                .unwrap_or_else(|| panic!("no LoRA target for {}", src.name));
            assert_eq!(target.value.shape(), src.value.shape(), "{}", src.name);
            target.value = src.value.clone();
        }
        lora
    }

    /// ReLoRA periodic merge: folds every LoRA adapter into its backbone and
    /// re-initializes the adapters. No-op for dense/factored models.
    pub fn merge_adapters(&mut self, rng: &mut Rng) {
        let layers = self.layers.clone();
        for layer in &layers {
            for lin in [
                &layer.wq,
                &layer.wk,
                &layer.wv,
                &layer.wo,
                &layer.gate,
                &layer.up,
                &layer.down,
            ] {
                lin.merge_adapter(&mut self.params, rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch(cfg: &ModelConfig, batch: usize, rng: &mut Rng) -> (Vec<u32>, Vec<u32>) {
        let n = batch * cfg.max_seq;
        let tokens: Vec<u32> = (0..n).map(|_| rng.below(cfg.vocab_size) as u32).collect();
        let targets: Vec<u32> = tokens
            .iter()
            .map(|&t| (t + 1) % cfg.vocab_size as u32)
            .collect();
        (tokens, targets)
    }

    #[test]
    fn initial_loss_is_near_log_vocab() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(50);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let (tokens, targets) = toy_batch(&cfg, 2, &mut rng);
        let loss = model.eval_loss(&tokens, &targets, 2);
        let expected = (cfg.vocab_size as f32).ln();
        assert!(
            (loss - expected).abs() < 1.0,
            "loss {loss} vs ln V {expected}"
        );
    }

    #[test]
    fn gradients_exist_for_all_trainable_params() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(51);
        let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let (tokens, targets) = toy_batch(&cfg, 2, &mut rng);
        let (_, grads) = model.loss_and_grads(&tokens, &targets, 2);
        for (p, gr) in model.params.iter().zip(&grads) {
            assert!(gr.is_some(), "missing grad for {}", p.name);
            let g = gr.as_ref().unwrap();
            assert_eq!(g.shape(), p.value.shape(), "{}", p.name);
            assert!(g.all_finite(), "{} grad not finite", p.name);
        }
    }

    #[test]
    fn sgd_on_constant_batch_reduces_loss() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(52);
        let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let (tokens, targets) = toy_batch(&cfg, 2, &mut rng);
        let (first, _) = model.loss_and_grads(&tokens, &targets, 2);
        for _ in 0..20 {
            let (_, grads) = model.loss_and_grads(&tokens, &targets, 2);
            for (p, gr) in model.params.iter_mut().zip(&grads) {
                if let Some(g) = gr {
                    p.value.axpy(-0.5, g);
                }
            }
        }
        let last = model.eval_loss(&tokens, &targets, 2);
        assert!(
            last < first - 0.3,
            "overfitting a fixed batch must reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn lora_model_freezes_backbone() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(53);
        let mut model = LlamaModel::new(
            &cfg,
            LinearMode::LoRa {
                rank: 2,
                alpha: 4.0,
            },
            &mut rng,
        );
        let (tokens, targets) = toy_batch(&cfg, 1, &mut rng);
        let (_, grads) = model.loss_and_grads(&tokens, &targets, 1);
        for (p, gr) in model.params.iter().zip(&grads) {
            if !p.trainable {
                assert!(gr.is_none(), "frozen {} must not produce a grad", p.name);
            }
        }
        assert!(model.num_trainable() < model.params.iter().map(Param::len).sum::<usize>());
    }

    #[test]
    fn classification_loss_and_predictions_have_right_shape() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(54);
        let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let (tokens, _) = toy_batch(&cfg, 3, &mut rng);
        let labels = vec![1u32, 2, 3];
        let (loss, grads) = model.class_loss_and_grads(&tokens, &labels, 3);
        assert!(loss.is_finite() && loss > 0.0);
        assert!(grads.iter().filter(|g| g.is_some()).count() > 0);
        let preds = model.classify(&tokens, 3);
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|&p| (p as usize) < cfg.vocab_size));
    }

    #[test]
    fn to_lora_preserves_function_and_freezes_backbone() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(56);
        let dense = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let lora = dense.to_lora(2, 4.0, &mut rng);
        let (tokens, targets) = toy_batch(&cfg, 2, &mut rng);
        let a = dense.eval_loss(&tokens, &targets, 2);
        let b = lora.eval_loss(&tokens, &targets, 2);
        assert!(
            (a - b).abs() < 1e-4,
            "LoRA-at-init must equal base: {a} vs {b}"
        );
        assert!(lora.num_trainable() < dense.num_trainable());
    }

    #[test]
    fn num_params_matches_config_shapes_for_dense() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(55);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        assert_eq!(model.num_trainable(), cfg.num_params());
        // Names must agree with the config inventory.
        let names: Vec<&str> = model.params.iter().map(|p| p.name.as_str()).collect();
        for (name, r, c) in cfg.weight_shapes() {
            let p = model
                .params
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("missing {name}; have {names:?}"));
            assert_eq!(p.value.shape(), (r, c), "{name}");
        }
    }
}
