//! The synthetic C4 substitute: a first-order Markov source over a Zipf
//! vocabulary.

use apollo_tensor::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a [`SyntheticCorpus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the unigram distribution (1.0 ≈ natural text).
    pub zipf_s: f64,
    /// Number of candidate continuations per context token.
    pub branch: usize,
    /// Probability of following the Markov structure (vs. a unigram draw).
    pub p_struct: f32,
    /// Seed defining the corpus (the "language"), not the sampling stream.
    pub corpus_seed: u64,
}

impl CorpusConfig {
    /// A sensible default for a given vocabulary size.
    pub fn with_vocab(vocab_size: usize) -> Self {
        CorpusConfig {
            vocab_size,
            zipf_s: 1.0,
            branch: 8,
            p_struct: 0.85,
            corpus_seed: 0xC0FFEE,
        }
    }
}

/// A deterministic synthetic text source.
///
/// Each previous token maps to a small fixed candidate set of continuations
/// (derived by hashing the context token with the corpus seed); tokens
/// follow a candidate with probability `p_struct` and an i.i.d. Zipf draw
/// otherwise. The conditional entropy is therefore far below the unigram
/// entropy, giving language models real structure to learn.
///
/// The dependence is deliberately first-order: with `vocab` contexts the
/// transition table is learnable within the ~10⁶-token budgets of the CPU
/// proxy runs (an order-2 hash table would need ~vocab² contexts' worth of
/// data, leaving every optimizer stuck at the unigram entropy and unable to
/// separate).
///
/// # Example
///
/// ```
/// use apollo_data::{CorpusConfig, SyntheticCorpus};
///
/// let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(256));
/// let a = corpus.generate(100, 1);
/// let b = corpus.generate(100, 1);
/// assert_eq!(a, b); // same stream seed → same tokens
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    cfg: CorpusConfig,
    /// Zipf cumulative distribution for inverse-CDF sampling.
    zipf_cdf: Vec<f64>,
}

impl SyntheticCorpus {
    /// Builds the corpus tables.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 4` or `branch == 0`.
    pub fn new(cfg: CorpusConfig) -> Self {
        assert!(cfg.vocab_size >= 4, "vocab too small");
        assert!(cfg.branch > 0, "branch must be positive");
        let mut weights: Vec<f64> = (1..=cfg.vocab_size)
            .map(|k| 1.0 / (k as f64).powf(cfg.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        SyntheticCorpus {
            cfg,
            zipf_cdf: weights,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// Samples one token from the Zipf unigram distribution.
    fn zipf_sample(&self, rng: &mut Rng) -> u32 {
        let u = rng.uniform() as f64;
        // Binary search the CDF.
        let mut lo = 0usize;
        let mut hi = self.zipf_cdf.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.zipf_cdf[mid] < u {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u32
    }

    /// The deterministic candidate set for the previous token `b`.
    fn candidates(&self, b: u32) -> impl Iterator<Item = u32> + '_ {
        // A tiny splitmix-style hash of (context, corpus seed) spawns the
        // per-context candidate list. Candidates are biased toward frequent
        // tokens by squaring a uniform draw (index ∝ u², Zipf-ish).
        let mut h = self
            .cfg
            .corpus_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(b as u64);
        let v = self.cfg.vocab_size as f64;
        (0..self.cfg.branch).map(move |_| {
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 29;
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            ((u * u) * v) as u32 % self.cfg.vocab_size as u32
        })
    }

    /// Generates `n` tokens from sampling stream `stream_seed`.
    ///
    /// Different stream seeds give statistically independent documents of
    /// the *same* language; the train/validation split uses disjoint seeds.
    pub fn generate(&self, n: usize, stream_seed: u64) -> Vec<u32> {
        let mut rng = Rng::seed_from_u64(stream_seed ^ 0xDA7A);
        let mut out = Vec::with_capacity(n);
        let mut prev = self.zipf_sample(&mut rng);
        for _ in 0..n {
            let next = if rng.uniform() < self.cfg.p_struct {
                let k = rng.below(self.cfg.branch);
                self.candidates(prev).nth(k).expect("branch > 0")
            } else {
                self.zipf_sample(&mut rng)
            };
            out.push(next);
            prev = next;
        }
        out
    }

    /// Upper bound on the achievable cross-entropy (nats/token): entropy of
    /// the mixture a perfect model could reach, ignoring candidate-set
    /// overlap. Useful as a sanity floor in tests.
    pub fn structural_entropy_bound(&self) -> f64 {
        let p = self.cfg.p_struct as f64;
        // Perfect model: with prob p, uniform over `branch`; else Zipf.
        let zipf_entropy = {
            let mut prev = 0.0;
            let mut h = 0.0;
            for &c in &self.zipf_cdf {
                let pi = c - prev;
                prev = c;
                if pi > 0.0 {
                    h -= pi * pi.ln();
                }
            }
            h
        };
        p * (self.cfg.branch as f64).ln() + (1.0 - p) * zipf_entropy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_stream() {
        let c = SyntheticCorpus::new(CorpusConfig::with_vocab(128));
        assert_eq!(c.generate(500, 7), c.generate(500, 7));
        assert_ne!(c.generate(500, 7), c.generate(500, 8));
    }

    #[test]
    fn tokens_are_in_vocab() {
        let c = SyntheticCorpus::new(CorpusConfig::with_vocab(64));
        assert!(c.generate(2_000, 1).iter().all(|&t| (t as usize) < 64));
    }

    #[test]
    fn corpus_has_markov_structure() {
        // The empirical conditional entropy H(next | prev) must be far
        // below the unigram entropy.
        let c = SyntheticCorpus::new(CorpusConfig::with_vocab(64));
        let toks = c.generate(200_000, 3);
        let mut uni = vec![0f64; 64];
        for &t in &toks {
            uni[t as usize] += 1.0;
        }
        let n = toks.len() as f64;
        let h_uni: f64 = uni
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / n;
                -p * p.ln()
            })
            .sum();

        use std::collections::HashMap;
        let mut ctx: HashMap<u32, HashMap<u32, f64>> = HashMap::new();
        for w in toks.windows(2) {
            *ctx.entry(w[0]).or_default().entry(w[1]).or_default() += 1.0;
        }
        let mut h_cond = 0.0;
        let total = (toks.len() - 1) as f64;
        for counts in ctx.values() {
            let ctx_n: f64 = counts.values().sum();
            for &c in counts.values() {
                let p = c / ctx_n;
                h_cond += (ctx_n / total) * (-p * p.ln());
            }
        }
        assert!(
            h_cond < 0.75 * h_uni,
            "conditional entropy {h_cond:.3} not much below unigram {h_uni:.3}"
        );
    }

    #[test]
    fn different_corpus_seeds_define_different_languages() {
        let mut cfg = CorpusConfig::with_vocab(64);
        let a = SyntheticCorpus::new(cfg.clone()).generate(100, 5);
        cfg.corpus_seed = 999;
        let b = SyntheticCorpus::new(cfg).generate(100, 5);
        assert_ne!(a, b);
    }

    #[test]
    fn structural_entropy_bound_is_positive_and_below_log_vocab() {
        let c = SyntheticCorpus::new(CorpusConfig::with_vocab(512));
        let h = c.structural_entropy_bound();
        assert!(h > 0.0 && h < (512f64).ln(), "bound {h}");
    }

    #[test]
    #[should_panic(expected = "vocab too small")]
    fn rejects_tiny_vocab() {
        let _ = SyntheticCorpus::new(CorpusConfig::with_vocab(2));
    }
}
