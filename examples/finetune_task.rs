//! Fine-tuning scenario: pre-train a small base model, then fine-tune it
//! on a synthetic commonsense-style classification task three ways — full
//! AdamW, LoRA adapters, and APOLLO-Mini — and compare accuracy and
//! optimizer memory.
//!
//! ```sh
//! cargo run --release --example finetune_task
//! ```

use apollo_repro::data::{commonsense_suite, CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_repro::nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_repro::optim::{AdamW, Apollo, Optimizer};
use apollo_repro::tensor::Rng;
use apollo_repro::train::{finetune, pretrain, FinetuneConfig, TrainConfig};

fn main() {
    let cfg = ModelConfig::tiny_60m();
    let mut rng = Rng::seed_from_u64(1);

    println!("pre-training the base model ...");
    let mut base = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    let mut pre = AdamW::new();
    let tc = TrainConfig {
        lr: 3e-3,
        grad_clip: Some(1.0),
        ..TrainConfig::quick(200)
    };
    let log = pretrain(&mut base, &mut pre, &mut batcher, &tc);
    println!("base validation ppl: {:.1}\n", log.final_ppl);

    let mut task = commonsense_suite(cfg.vocab_size, cfg.max_seq).remove(0); // "WG"
    let fc = FinetuneConfig {
        steps: 60,
        batch: 8,
        lr: 3e-3,
        eval_examples: 100,
    };

    // Full fine-tuning with AdamW.
    {
        let mut model = base.clone();
        let mut opt = AdamW::new();
        let res = finetune(&mut model, &mut opt, &mut task, &fc);
        println!(
            "full AdamW     : {:>5.1}% accuracy (chance {:.0}%), {:>8} state elems",
            res.accuracy,
            res.chance,
            opt.state_elems()
        );
    }
    // LoRA adapters (rank 8) over the frozen base.
    {
        let mut model = base.to_lora(8, 16.0, &mut rng);
        let mut opt = AdamW::new();
        let res = finetune(&mut model, &mut opt, &mut task, &fc);
        println!(
            "LoRA (r=8)     : {:>5.1}% accuracy (chance {:.0}%), {:>8} state elems",
            res.accuracy,
            res.chance,
            opt.state_elems()
        );
    }
    // APOLLO-Mini: full-parameter training at SGD-level optimizer memory.
    {
        let mut model = base.clone();
        let mut opt = Apollo::mini(200).with_alpha((cfg.hidden as f32 / 4.0).sqrt());
        let res = finetune(&mut model, &mut opt, &mut task, &fc);
        println!(
            "APOLLO-Mini    : {:>5.1}% accuracy (chance {:.0}%), {:>8} state elems",
            res.accuracy,
            res.chance,
            opt.state_elems()
        );
    }
}
