//! Fast-tier tolerance contract: every kernel that branches on
//! [`NumericsMode`] must stay within a tight relative-error envelope of its
//! exact-mode result. The exact tier keeps its bitwise guarantees
//! (`fused_equivalence.rs`, `kernel_equivalence.rs`); this suite pins how
//! far the reassociated SIMD tier is allowed to drift.
//!
//! The bounds are ULP-style: a reduction over `k` terms reassociated into
//! 8-lane partial sums perturbs each output by at most ~`k` half-ulp
//! rounding steps in the worst case, but in practice (random data, balanced
//! trees) the drift is orders of magnitude smaller. The tolerances below
//! are ~10× observed worst cases on the CI geometry — loose enough to be
//! portable, tight enough that a broken kernel (wrong lane handling,
//! dropped tail) fails immediately.

use apollo_tensor::fused::{
    fused_adam_update, fused_apollo_scale, fused_rmsnorm_fwd, fused_softmax_xent_fwd,
    fused_swiglu_fwd, ChannelScale,
};
use apollo_tensor::{set_numerics_override, Matrix, NumericsMode, Rng};

/// Runs `f` with the thread-local numerics override pinned to `mode`,
/// restoring the default afterwards even on panic-free early returns.
fn with_mode<T>(mode: NumericsMode, f: impl FnOnce() -> T) -> T {
    set_numerics_override(Some(mode));
    let out = f();
    set_numerics_override(None);
    out
}

/// Asserts `fast` is within `tol` relative error of `exact`, elementwise.
fn assert_close(tag: &str, exact: &[f32], fast: &[f32], tol: f32) {
    assert_eq!(exact.len(), fast.len(), "{tag}: length mismatch");
    for (i, (&e, &f)) in exact.iter().zip(fast).enumerate() {
        let err = (e - f).abs();
        let bound = tol * e.abs().max(1.0);
        assert!(
            err <= bound,
            "{tag}[{i}]: exact {e} vs fast {f} (err {err:e} > {bound:e})"
        );
    }
}

#[test]
fn matmul_family_fast_matches_exact_within_tolerance() {
    let mut rng = Rng::seed_from_u64(900);
    // Ragged shapes: vector tails, odd inner dims, and a gemv-shaped row.
    for (m, k, n) in [(7usize, 33usize, 19usize), (16, 64, 64), (1, 128, 96)] {
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let exact = with_mode(NumericsMode::Exact, || a.matmul(&b));
        let fast = with_mode(NumericsMode::Fast, || a.matmul(&b));
        assert_close(
            &format!("matmul {m}x{k}x{n}"),
            exact.as_slice(),
            fast.as_slice(),
            1e-4,
        );

        let bt = b.transpose();
        let exact = with_mode(NumericsMode::Exact, || a.matmul_transb(&bt));
        let fast = with_mode(NumericsMode::Fast, || a.matmul_transb(&bt));
        assert_close(
            &format!("transb {m}x{k}x{n}"),
            exact.as_slice(),
            fast.as_slice(),
            1e-4,
        );

        let at = a.transpose();
        let exact = with_mode(NumericsMode::Exact, || at.matmul_transa(&b));
        let fast = with_mode(NumericsMode::Fast, || at.matmul_transa(&b));
        assert_close(
            &format!("transa {m}x{k}x{n}"),
            exact.as_slice(),
            fast.as_slice(),
            1e-4,
        );
    }
}

#[test]
fn fused_forward_kernels_fast_match_exact_within_tolerance() {
    let mut rng = Rng::seed_from_u64(901);
    let x = Matrix::randn(9, 67, &mut rng);
    let gain = Matrix::rand_uniform(1, 67, 0.5, 1.5, &mut rng);
    let (ye, ie) = with_mode(NumericsMode::Exact, || fused_rmsnorm_fwd(&x, &gain, 1e-5));
    let (yf, inf) = with_mode(NumericsMode::Fast, || fused_rmsnorm_fwd(&x, &gain, 1e-5));
    assert_close("rmsnorm y", ye.as_slice(), yf.as_slice(), 1e-5);
    assert_close("rmsnorm inv_rms", &ie, &inf, 1e-5);

    let a = Matrix::randn(9, 67, &mut rng);
    let b = Matrix::randn(9, 67, &mut rng);
    let exact = with_mode(NumericsMode::Exact, || fused_swiglu_fwd(&a, &b));
    let fast = with_mode(NumericsMode::Fast, || fused_swiglu_fwd(&a, &b));
    // SiLU in fast mode uses the SIMD exp approximation: ~1e-6 relative.
    assert_close("swiglu", exact.as_slice(), fast.as_slice(), 1e-4);

    let logits = Matrix::randn(11, 37, &mut rng);
    let targets: Vec<u32> = (0..11).map(|_| rng.below(37) as u32).collect();
    let (le, pe, de) = with_mode(NumericsMode::Exact, || {
        fused_softmax_xent_fwd(&logits, &targets)
    });
    let (lf, pf, df) = with_mode(NumericsMode::Fast, || {
        fused_softmax_xent_fwd(&logits, &targets)
    });
    assert!(
        (le - lf).abs() <= 1e-4 * le.abs().max(1.0),
        "loss {le} vs {lf}"
    );
    assert_close("xent probs", pe.as_slice(), pf.as_slice(), 1e-4);
    assert_close("xent denoms", &de, &df, 1e-4);
}

#[test]
fn optimizer_kernels_fast_match_exact_within_tolerance() {
    let mut rng = Rng::seed_from_u64(902);
    let g = Matrix::randn(13, 45, &mut rng);

    let run_adam = |mode: NumericsMode, rng: &mut Rng| {
        let mut w = Matrix::randn(13, 45, rng);
        let mut m = Matrix::randn(13, 45, rng).scale(0.1);
        let mut v = Matrix::randn(13, 45, rng).map(|x| x * x);
        with_mode(mode, || {
            fused_adam_update(
                &mut w, &g, &mut m, &mut v, 0.9, 0.999, 0.2, 0.1, 1e-8, 3e-3, 0.01,
            );
        });
        (w, m, v)
    };
    // Same seed stream for both runs so the inputs are identical.
    let (we, me, ve) = run_adam(NumericsMode::Exact, &mut Rng::seed_from_u64(77));
    let (wf, mf, vf) = run_adam(NumericsMode::Fast, &mut Rng::seed_from_u64(77));
    assert_close("adam w", we.as_slice(), wf.as_slice(), 1e-5);
    assert_close("adam m", me.as_slice(), mf.as_slice(), 1e-5);
    assert_close("adam v", ve.as_slice(), vf.as_slice(), 1e-5);

    let grad = Matrix::randn(13, 45, &mut rng);
    let scales: Vec<f32> = (0..45).map(|_| rng.uniform_in(0.2, 2.0)).collect();
    let run_apollo = |mode: NumericsMode| {
        let mut update = Matrix::zeros(13, 45);
        let norm = with_mode(mode, || {
            fused_apollo_scale(&mut update, &grad, ChannelScale::Cols(&scales), 1.0)
        });
        (update, norm)
    };
    let (ue, ne) = run_apollo(NumericsMode::Exact);
    let (uf, nf) = run_apollo(NumericsMode::Fast);
    assert_close("apollo update", ue.as_slice(), uf.as_slice(), 1e-5);
    assert!(
        (ne - nf).abs() <= 1e-4 * ne.abs().max(1.0),
        "apollo norm {ne} vs {nf}"
    );
}

#[test]
fn override_restores_exact_default() {
    // The override is thread-local and must not leak into subsequent exact
    // work: the same matmul after a fast-mode excursion is bit-identical to
    // one that never saw the override.
    let mut rng = Rng::seed_from_u64(903);
    let a = Matrix::randn(5, 41, &mut rng);
    let b = Matrix::randn(41, 23, &mut rng);
    let before = a.matmul(&b);
    let _ = with_mode(NumericsMode::Fast, || a.matmul(&b));
    let after = a.matmul(&b);
    for (x, y) in before.as_slice().iter().zip(after.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
