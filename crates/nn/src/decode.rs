//! Tape-free incremental decoding with per-layer KV caches.
//!
//! [`LlamaModel::forward_cached`] runs the transformer trunk over a handful
//! of new token rows without recording an autograd tape, reading and
//! extending per-sequence [`KvCache`]s so one decode step costs O(seq)
//! instead of the O(seq²) of re-running the full forward.
//!
//! # Bit-equivalence contract
//!
//! The cached forward is *bit-identical* to the graph forward
//! ([`LlamaModel::full_logits`]), not merely close. Every float operation
//! here replicates the graph op's accumulation order exactly:
//!
//! - matmuls go through the same [`Matrix`] kernels, which accumulate every
//!   output element in ascending inner-dimension order at any thread count;
//! - RMSNorm and the SwiGLU gate call the *same* fused kernels as the graph
//!   ([`apollo_tensor::fused`]), and RoPE goes through the shared
//!   [`fused::rope_rotate_row`] rotation with the frequency table hoisted
//!   out of the row loop (`powf` is pure, so precomputing it is exact);
//! - attention scores, the running softmax max/denominator, and the
//!   probability-weighted value sum all ascend over cache positions exactly
//!   like the graph's per-row loops — the graph's `probs · V` product
//!   includes zero-probability future positions, but `±0 · finite` never
//!   changes an accumulator, so summing only positions `0..=pos` is
//!   bit-identical.
//!
//! `nn/tests/decode_equivalence.rs` pins this contract across adversarial
//! sequence lengths, prefill chunkings, and interleaved batches.

use apollo_tensor::{current_numerics, fused, simd, Matrix, NumericsMode};

use crate::adapter::{AdapterLayer, LoraAdapter, LowRankDelta};
use crate::model::LlamaModel;

/// Per-sequence attention cache: one post-RoPE key matrix and one value
/// matrix per layer, each `capacity × hidden`, where row `t` holds the
/// projection of the token at absolute position `t`.
#[derive(Debug, Clone)]
pub struct KvCache {
    /// Per-layer keys (RoPE already applied).
    k: Vec<Matrix>,
    /// Per-layer values.
    v: Vec<Matrix>,
    /// Number of positions filled so far (shared by all layers).
    len: usize,
}

impl KvCache {
    /// Positions filled so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions have been filled yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of positions the cache can hold.
    pub fn capacity(&self) -> usize {
        self.k.first().map_or(0, Matrix::rows)
    }

    /// Positions still available before the cache is full.
    pub fn remaining(&self) -> usize {
        self.capacity() - self.len
    }

    /// Resets the cache for a new sequence. Rows past `len` are never read,
    /// so the buffers need no clearing.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Bytes of K/V storage across all layers (4 per f32 element).
    pub fn memory_bytes(&self) -> usize {
        self.k
            .iter()
            .chain(self.v.iter())
            .map(|m| m.len() * 4)
            .sum()
    }

    /// Copies rows `lo..hi` of every layer out into an owned [`KvSpan`].
    /// Because KV rows at position `t` are a pure function of the token
    /// prefix `0..=t` (and the adapter), the copy is reusable by any later
    /// sequence sharing that prefix — the foundation of the prefix cache.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi <= len()`.
    pub fn export_rows(&self, lo: usize, hi: usize) -> KvSpan {
        assert!(
            lo <= hi && hi <= self.len,
            "export_rows: {lo}..{hi} of {}",
            self.len
        );
        let hidden = self.k.first().map_or(0, Matrix::cols);
        let copy = |mats: &[Matrix]| -> Vec<Vec<f32>> {
            mats.iter()
                .map(|m| {
                    let mut flat = Vec::with_capacity((hi - lo) * hidden);
                    for r in lo..hi {
                        flat.extend_from_slice(m.row(r));
                    }
                    flat
                })
                .collect()
        };
        KvSpan {
            k: copy(&self.k),
            v: copy(&self.v),
            rows: hi - lo,
            hidden,
        }
    }

    /// Appends a span's rows at the cache's current length and advances it,
    /// exactly as if those positions had just been prefetched by
    /// [`LlamaModel::forward_cached`]. A bitwise row copy, so decoding on
    /// top of an appended span is bit-identical to cold prefill of the same
    /// prefix (pinned by `nn/tests/decode_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics on layer/width mismatch or if the span does not fit.
    pub fn append_span(&mut self, span: &KvSpan) {
        assert_eq!(span.k.len(), self.k.len(), "append_span: layer count");
        assert_eq!(
            span.hidden,
            self.k.first().map_or(0, Matrix::cols),
            "append_span: hidden width"
        );
        assert!(span.rows <= self.remaining(), "append_span: cache full");
        for (dst, src) in self.k.iter_mut().zip(&span.k) {
            for r in 0..span.rows {
                dst.row_mut(self.len + r)
                    .copy_from_slice(&src[r * span.hidden..(r + 1) * span.hidden]);
            }
        }
        for (dst, src) in self.v.iter_mut().zip(&span.v) {
            for r in 0..span.rows {
                dst.row_mut(self.len + r)
                    .copy_from_slice(&src[r * span.hidden..(r + 1) * span.hidden]);
            }
        }
        self.len += span.rows;
    }
}

/// An owned, position-independent copy of consecutive KV rows (all layers),
/// exported from one sequence's cache and appendable onto another's. Spans
/// own their storage outright — the prefix cache's eviction can therefore
/// never corrupt a sequence that already copied a span in.
#[derive(Debug, Clone)]
pub struct KvSpan {
    /// Per-layer keys, `rows × hidden` row-major.
    k: Vec<Vec<f32>>,
    /// Per-layer values, same shape.
    v: Vec<Vec<f32>>,
    rows: usize,
    hidden: usize,
}

impl KvSpan {
    /// Token positions covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes of f32 storage across all layers.
    pub fn memory_bytes(&self) -> usize {
        self.k
            .iter()
            .chain(self.v.iter())
            .map(|l| l.len() * 4)
            .sum()
    }

    /// An owned copy of rows `lo..hi` (used when a radix-tree edge splits
    /// or a lookup matches only part of a node's span).
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi <= rows()`.
    pub fn slice(&self, lo: usize, hi: usize) -> KvSpan {
        assert!(
            lo <= hi && hi <= self.rows,
            "slice: {lo}..{hi} of {}",
            self.rows
        );
        let cut = |layers: &[Vec<f32>]| -> Vec<Vec<f32>> {
            layers
                .iter()
                .map(|l| l[lo * self.hidden..hi * self.hidden].to_vec())
                .collect()
        };
        KvSpan {
            k: cut(&self.k),
            v: cut(&self.v),
            rows: hi - lo,
            hidden: self.hidden,
        }
    }
}

/// Row-wise RMSNorm with learned gain via the shared fused kernel (the
/// per-row inverse-rms cache is only needed by backward, so it is dropped).
fn rmsnorm_rows(x: &Matrix, gain: &Matrix) -> Matrix {
    fused::fused_rmsnorm_fwd(x, gain, 1e-5).0
}

/// Groups batch rows by adapter identity (pointer equality), in first-
/// appearance order. `None` rows belong to no group and get base weights
/// only.
fn group_adapter_rows<'a>(
    adapters: &[Option<&'a LoraAdapter>],
) -> Vec<(&'a LoraAdapter, Vec<usize>)> {
    let mut groups: Vec<(&LoraAdapter, Vec<usize>)> = Vec::new();
    for (r, ad) in adapters.iter().enumerate() {
        if let Some(a) = ad {
            match groups.iter_mut().find(|(g, _)| std::ptr::eq(*g, *a)) {
                Some((_, idx)) => idx.push(r),
                None => groups.push((a, vec![r])),
            }
        }
    }
    groups
}

/// Adds each group's low-rank delta to its rows of a projection output:
/// gather the group's input rows, run `((x·A)·B)·scale` in exactly the op
/// order of the LoRA `forward_nograd`, scatter-add back. Row independence
/// of the matmul kernels makes this bit-identical to a full LoRA forward
/// on those rows.
fn add_lora_deltas(
    out: &mut Matrix,
    x: &Matrix,
    groups: &[(&LoraAdapter, Vec<usize>)],
    layer: usize,
    pick: impl Fn(&AdapterLayer) -> &LowRankDelta,
) {
    for (ad, idx) in groups {
        let d = pick(&ad.layers[layer]);
        let xa = x.gather_rows(idx).matmul(&d.a);
        let xab = xa.matmul(&d.b);
        out.scatter_add_rows(idx, &xab.scale(d.scale));
    }
}

impl LlamaModel {
    /// Allocates a fresh [`KvCache`] able to hold `capacity` positions.
    pub fn new_kv_cache(&self, capacity: usize) -> KvCache {
        let h = self.cfg.hidden;
        KvCache {
            k: (0..self.layers.len())
                .map(|_| Matrix::zeros(capacity, h))
                .collect(),
            v: (0..self.layers.len())
                .map(|_| Matrix::zeros(capacity, h))
                .collect(),
            len: 0,
        }
    }

    /// Runs the trunk over a batch of new token rows without a tape,
    /// extending the referenced caches, and returns the final-norm hidden
    /// states (`rows.len() × hidden`, one row per input row, in order).
    ///
    /// Each row is `(cache_index, token)`: its absolute position is the
    /// cache's current length plus the number of earlier rows in this call
    /// that reference the same cache, so a prefill chunk is simply several
    /// consecutive rows with one cache index, and a continuous-batching
    /// decode step is one row per active sequence. Rows attend to every
    /// earlier position of their own cache — including positions written
    /// earlier in the same call — and never to other caches. All caches'
    /// lengths advance only after every layer has run.
    ///
    /// # Panics
    ///
    /// Panics if a cache index or token is out of range, or a row's
    /// position would exceed its cache's capacity.
    pub fn forward_cached(&self, caches: &mut [KvCache], rows: &[(usize, u32)]) -> Matrix {
        self.forward_cached_with(caches, rows, &[])
    }

    /// [`LlamaModel::forward_cached`] with an optional per-row LoRA adapter:
    /// `adapters` is empty (no adapters anywhere) or parallel to `rows`, and
    /// each `Some` row gets its adapter's low-rank delta added to all seven
    /// projections of every layer — `x·W + ((x·A)·B)·(alpha/rank)` — without
    /// materializing a per-adapter dense weight.
    ///
    /// Rows are grouped by adapter identity so one call batches any mix of
    /// tenants. Because every Matrix kernel computes each output row
    /// independently (ascending inner-dimension accumulation per row), the
    /// gather → low-rank matmuls → scatter-add path is bit-identical to
    /// running the full LoRA model on those rows, and a mixed-adapter batch
    /// is bit-identical to serving each adapter serially (pinned by
    /// `nn/tests/decode_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics on the [`LlamaModel::forward_cached`] conditions, if
    /// `adapters` is non-empty but not parallel to `rows`, or if an
    /// adapter's layer count does not match the model's.
    pub fn forward_cached_with(
        &self,
        caches: &mut [KvCache],
        rows: &[(usize, u32)],
        adapters: &[Option<&LoraAdapter>],
    ) -> Matrix {
        assert!(
            adapters.is_empty() || adapters.len() == rows.len(),
            "forward_cached_with: adapters must be empty or one per row"
        );
        let groups = group_adapter_rows(adapters);
        for (ad, _) in &groups {
            assert_eq!(
                ad.layers.len(),
                self.layers.len(),
                "forward_cached_with: adapter layer count"
            );
        }
        let h = self.cfg.hidden;
        let heads = self.cfg.n_heads;
        let hd = self.cfg.head_dim();
        let n_rows = rows.len();
        assert!(n_rows > 0, "forward_cached: no rows");

        // Absolute position per row: cache length + in-call offset.
        let mut next_len: Vec<usize> = caches.iter().map(|c| c.len).collect();
        let positions: Vec<usize> = rows
            .iter()
            .map(|&(c, tok)| {
                assert!(
                    (tok as usize) < self.cfg.vocab_size,
                    "forward_cached: token {tok} out of vocab"
                );
                let pos = next_len[c];
                assert!(
                    pos < caches[c].capacity(),
                    "forward_cached: cache {c} full at position {pos}"
                );
                next_len[c] += 1;
                pos
            })
            .collect();

        let embed = &self.params[self.embed].value;
        let mut x = Matrix::zeros(n_rows, h);
        for (r, &(_, tok)) in rows.iter().enumerate() {
            x.row_mut(r).copy_from_slice(embed.row(tok as usize));
        }

        let scale = 1.0 / (hd as f32).sqrt();
        // Numerics tier, resolved once per call so one forward never mixes
        // tiers across layers.
        let fast = current_numerics() == NumericsMode::Fast;
        // RoPE frequency table, hoisted out of the per-layer/per-row loops
        // (pure `powf` of the geometry, so precomputing is bit-exact).
        let freqs = fused::rope_freqs(hd, self.cfg.rope_theta);
        for (l, layer) in self.layers.iter().enumerate() {
            let hn = rmsnorm_rows(&x, &self.params[layer.attn_norm].value);
            let mut q = layer.wq.forward_nograd(&hn, &self.params);
            let mut k = layer.wk.forward_nograd(&hn, &self.params);
            let mut v = layer.wv.forward_nograd(&hn, &self.params);
            add_lora_deltas(&mut q, &hn, &groups, l, |al| &al.wq);
            add_lora_deltas(&mut k, &hn, &groups, l, |al| &al.wk);
            add_lora_deltas(&mut v, &hn, &groups, l, |al| &al.wv);
            for (r, &pos) in positions.iter().enumerate() {
                fused::rope_rotate_row(q.row_mut(r), pos as f32, heads, hd, &freqs, false);
                fused::rope_rotate_row(k.row_mut(r), pos as f32, heads, hd, &freqs, false);
            }
            // Keys/values land in the caches first so that later rows of the
            // same call attend to earlier ones, as in the full forward.
            for (r, &(c, _)) in rows.iter().enumerate() {
                caches[c].k[l]
                    .row_mut(positions[r])
                    .copy_from_slice(k.row(r));
                caches[c].v[l]
                    .row_mut(positions[r])
                    .copy_from_slice(v.row(r));
            }
            let mut att = Matrix::zeros(n_rows, h);
            let mut s = Vec::new();
            for (r, &(c, _)) in rows.iter().enumerate() {
                let pos = positions[r];
                let kc = &caches[c].k[l];
                let vc = &caches[c].v[l];
                let qrow = q.row(r);
                let orow = att.row_mut(r);
                for hh in 0..heads {
                    let lanes = hh * hd..(hh + 1) * hd;
                    let qh = &qrow[lanes.clone()];
                    if fast {
                        // Fast tier: fused whole-head score and mix kernels
                        // (one dispatched call each per head, not one per
                        // cached position), with the softmax denominator
                        // folded into the probabilities. Reassociated, so
                        // covered by the tolerance tests rather than the
                        // bitwise contract.
                        s.resize(pos + 1, 0.0);
                        simd::attn_scores(qh, kc.as_slice(), h, hh * hd, scale, &mut s);
                        let maxv = simd::max_slice(&s);
                        let inv = 1.0 / simd::softmax_exp_sum(&mut s, maxv);
                        for pj in s.iter_mut() {
                            *pj *= inv;
                        }
                        simd::attn_mix(&s, vc.as_slice(), h, hh * hd, &mut orow[lanes]);
                        continue;
                    }
                    // Scaled scores against every cached position: the same
                    // ascending-dimension dot and per-element scale as the
                    // graph's `q·kᵀ` / `scale_assign`.
                    s.clear();
                    for j in 0..=pos {
                        let kh = &kc.row(j)[lanes.clone()];
                        let mut acc = 0.0f32;
                        for (&qv, &kv) in qh.iter().zip(kh) {
                            acc += qv * kv;
                        }
                        s.push(acc * scale);
                    }
                    // Softmax over 0..=pos in the graph's exact order.
                    let maxv = s.iter().cloned().fold(f32::MIN, f32::max);
                    let mut denom = 0.0f32;
                    for e in s.iter_mut() {
                        *e = (*e - maxv).exp();
                        denom += *e;
                    }
                    for e in s.iter_mut() {
                        *e /= denom;
                    }
                    // probs · V, ascending positions per output element.
                    let oh = &mut orow[lanes];
                    for (j, &pj) in s.iter().enumerate() {
                        let vh = &vc.row(j)[hh * hd..(hh + 1) * hd];
                        for (ov, &vv) in oh.iter_mut().zip(vh) {
                            *ov += pj * vv;
                        }
                    }
                }
            }
            let mut o = layer.wo.forward_nograd(&att, &self.params);
            add_lora_deltas(&mut o, &att, &groups, l, |al| &al.wo);
            x.add_assign(&o);

            let mn = rmsnorm_rows(&x, &self.params[layer.mlp_norm].value);
            let mut gate_pre = layer.gate.forward_nograd(&mn, &self.params);
            let mut up = layer.up.forward_nograd(&mn, &self.params);
            add_lora_deltas(&mut gate_pre, &mn, &groups, l, |al| &al.gate);
            add_lora_deltas(&mut up, &mn, &groups, l, |al| &al.up);
            let act = fused::fused_swiglu_fwd(&gate_pre, &up);
            let mut mlp = layer.down.forward_nograd(&act, &self.params);
            add_lora_deltas(&mut mlp, &act, &groups, l, |al| &al.down);
            x.add_assign(&mlp);
        }
        for (c, len) in next_len.into_iter().enumerate() {
            caches[c].len = len;
        }
        rmsnorm_rows(&x, &self.params[self.final_norm].value)
    }

    /// Decodes final-norm hidden rows (as returned by
    /// [`LlamaModel::forward_cached`]) through the LM head.
    pub fn lm_logits(&self, hidden: &Matrix) -> Matrix {
        hidden.matmul(&self.params[self.head].value)
    }

    /// Reference logits from the full graph forward (`(batch·seq) × vocab`),
    /// the baseline the cached forward must match bit-for-bit. Also the
    /// "naive full-recompute" generation path `perf_infer` benches against.
    pub fn full_logits(&self, tokens: &[u32], batch: usize) -> Matrix {
        let (mut g, trunk, pnodes) = self.build_trunk(tokens, batch);
        let logits = g.matmul(trunk, pnodes[self.head]);
        g.value(logits).clone()
    }
}
