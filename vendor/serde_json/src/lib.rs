//! Offline shim for `serde_json`: a compact JSON writer and a recursive
//! descent parser over the shim `serde::Value` model.

use serde::{Deserialize, Number, Serialize, Value};

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Num(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Num(Number::F(f)) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats distinguishable from integers on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(xs) => write_seq(out, xs.iter(), indent, depth, ('[', ']'), |o, x, i, d| {
            write_value(o, x, i, d)
        }),
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, x), i, d| {
                write_string(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, x, i, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(xs));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Combine surrogate pairs; lone surrogates error.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first escape's last hex digit
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                self.pos -= 1; // parse_hex4 advances from pos+1
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| {
                                Error(format!("invalid \\u escape at byte {}", self.pos))
                            })?);
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        // Called with pos on the `u`; reads the 4 digits after it.
        let start = self.pos + 1;
        let end = start + 4;
        let digits = self
            .bytes
            .get(start..end)
            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
        let s = std::str::from_utf8(digits).map_err(|_| Error("bad \\u escape".to_string()))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".to_string()))?;
        self.pos = end - 1; // leave pos on the final hex digit
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let num = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| Error(format!("bad number `{text}`")))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            Number::I(
                -stripped
                    .parse::<i64>()
                    .map_err(|_| Error(format!("bad number `{text}`")))?,
            )
        } else {
            Number::U(
                text.parse::<u64>()
                    .map_err(|_| Error(format!("bad number `{text}`")))?,
            )
        };
        Ok(Value::Num(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f32>("0.25").unwrap(), 0.25);
        assert!(from_str::<f32>("null").unwrap().is_nan());
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn roundtrip_f32_is_exact() {
        for &x in &[0.1f32, 1e-30, 3.5e30, -7.25, f32::MIN_POSITIVE] {
            let back: f32 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<(String, usize, usize)> = vec![("a\"b".into(), 1, 2), ("c\\d\n".into(), 3, 4)];
        let s = to_string(&v).unwrap();
        let back: Vec<(String, usize, usize)> = from_str(&s).unwrap();
        assert_eq!(back, v);
        let o: Option<f32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1usize, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<usize>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<bool>("trve").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("1 1").is_err());
    }
}
