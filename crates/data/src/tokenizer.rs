//! Tokenization for training on real text instead of the synthetic corpus.
//!
//! Two tokenizers ship:
//!
//! - [`ByteTokenizer`] — the 256-entry byte vocabulary, zero-configuration;
//! - [`BpeTokenizer`] — byte-pair encoding trained greedily on a sample
//!   text, giving a compact vocabulary comparable to what the paper's
//!   LLaMA models consume (scaled down).
//!
//! Both guarantee `decode(encode(s)) == s` for arbitrary byte strings,
//! which the property tests rely on.

use std::collections::HashMap;

/// Common interface over the tokenizers.
pub trait Tokenize {
    /// Vocabulary size (token ids are `0..vocab_size`).
    fn vocab_size(&self) -> usize;
    /// Text → token ids.
    fn encode(&self, text: &[u8]) -> Vec<u32>;
    /// Token ids → text.
    fn decode(&self, tokens: &[u32]) -> Vec<u8>;
}

/// The identity byte tokenizer: one token per byte.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByteTokenizer;

impl Tokenize for ByteTokenizer {
    fn vocab_size(&self) -> usize {
        256
    }

    fn encode(&self, text: &[u8]) -> Vec<u32> {
        text.iter().map(|&b| b as u32).collect()
    }

    fn decode(&self, tokens: &[u32]) -> Vec<u8> {
        tokens.iter().map(|&t| t as u8).collect()
    }
}

/// A byte-pair-encoding tokenizer.
///
/// Training repeatedly merges the most frequent adjacent token pair until
/// the target vocabulary size is reached (or no pair repeats). The base
/// vocabulary is the 256 bytes, so any input round-trips exactly.
///
/// # Example
///
/// ```
/// use apollo_data::{BpeTokenizer, Tokenize};
///
/// let tok = BpeTokenizer::train(b"the cat sat on the mat, the cat sat", 270);
/// let ids = tok.encode(b"the cat");
/// assert_eq!(tok.decode(&ids), b"the cat");
/// assert!(ids.len() < 7, "BPE must compress repeated patterns");
/// ```
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    /// `merges[k] = (a, b)` means token `256 + k` expands to `a` then `b`.
    merges: Vec<(u32, u32)>,
    /// Merge lookup: `(a, b) → merged id`, in priority order (lower = earlier).
    ranks: HashMap<(u32, u32), u32>,
}

impl BpeTokenizer {
    /// Trains a BPE vocabulary of up to `vocab_size` tokens (≥ 256) on the
    /// sample text.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 256`.
    pub fn train(sample: &[u8], vocab_size: usize) -> Self {
        assert!(vocab_size >= 256, "vocab must cover all bytes");
        let mut tokens: Vec<u32> = sample.iter().map(|&b| b as u32).collect();
        let mut merges = Vec::new();
        let mut ranks = HashMap::new();
        while 256 + merges.len() < vocab_size {
            // Count adjacent pairs.
            let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
            for w in tokens.windows(2) {
                *counts.entry((w[0], w[1])).or_default() += 1;
            }
            // Deterministic argmax: highest count, ties by smallest pair.
            let best = counts
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .max_by_key(|&(pair, c)| (c, std::cmp::Reverse(pair)));
            let Some((pair, _)) = best else { break };
            let new_id = (256 + merges.len()) as u32;
            ranks.insert(pair, new_id);
            merges.push(pair);
            tokens = Self::merge_pass(&tokens, pair, new_id);
        }
        BpeTokenizer { merges, ranks }
    }

    fn merge_pass(tokens: &[u32], pair: (u32, u32), new_id: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(tokens.len());
        let mut i = 0;
        while i < tokens.len() {
            if i + 1 < tokens.len() && (tokens[i], tokens[i + 1]) == pair {
                out.push(new_id);
                i += 2;
            } else {
                out.push(tokens[i]);
                i += 1;
            }
        }
        out
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }
}

impl Tokenize for BpeTokenizer {
    fn vocab_size(&self) -> usize {
        256 + self.merges.len()
    }

    fn encode(&self, text: &[u8]) -> Vec<u32> {
        let mut tokens: Vec<u32> = text.iter().map(|&b| b as u32).collect();
        // Apply merges in training (priority) order; each pass is linear.
        loop {
            // Find the lowest-rank applicable merge.
            let mut best: Option<(u32, (u32, u32))> = None;
            for w in tokens.windows(2) {
                if let Some(&id) = self.ranks.get(&(w[0], w[1])) {
                    if best.is_none_or(|(b, _)| id < b) {
                        best = Some((id, (w[0], w[1])));
                    }
                }
            }
            let Some((id, pair)) = best else { break };
            tokens = Self::merge_pass(&tokens, pair, id);
        }
        tokens
    }

    fn decode(&self, tokens: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        for &t in tokens {
            self.expand(t, &mut out);
        }
        out
    }
}

impl BpeTokenizer {
    fn expand(&self, token: u32, out: &mut Vec<u8>) {
        if token < 256 {
            out.push(token as u8);
        } else {
            let (a, b) = self.merges[(token - 256) as usize];
            self.expand(a, out);
            self.expand(b, out);
        }
    }
}

/// Tokenizes a text file into a training token stream using a BPE
/// vocabulary trained on a prefix of the same file — the path for training
/// the model on user-supplied text instead of the synthetic corpus.
///
/// # Errors
///
/// Returns any I/O error from reading the file.
pub fn tokenize_file(
    path: &std::path::Path,
    vocab_size: usize,
) -> std::io::Result<(BpeTokenizer, Vec<u32>)> {
    let data = std::fs::read(path)?;
    let sample = &data[..data.len().min(64 << 10)];
    let tok = BpeTokenizer::train(sample, vocab_size);
    let ids = tok.encode(&data);
    Ok((tok, ids))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_tokenizer_roundtrips() {
        let t = ByteTokenizer;
        let text = b"hello \xff\x00 world";
        assert_eq!(t.decode(&t.encode(text)), text);
        assert_eq!(t.vocab_size(), 256);
    }

    #[test]
    fn bpe_roundtrips_arbitrary_bytes() {
        let tok = BpeTokenizer::train(b"abcabcabc \x00\xff abc", 300);
        for text in [
            b"abcabc".to_vec(),
            b"unseen text with novel bytes \x01\x02\x03".to_vec(),
            Vec::new(),
        ] {
            assert_eq!(tok.decode(&tok.encode(&text)), text);
        }
    }

    #[test]
    fn bpe_compresses_repetitive_text() {
        let sample = b"the quick brown fox the quick brown fox the quick brown fox";
        let tok = BpeTokenizer::train(sample, 320);
        let ids = tok.encode(sample);
        assert!(
            ids.len() * 2 < sample.len(),
            "{} tokens for {} bytes",
            ids.len(),
            sample.len()
        );
    }

    #[test]
    fn bpe_training_is_deterministic() {
        let sample = b"deterministic deterministic deterministic";
        let a = BpeTokenizer::train(sample, 280);
        let b = BpeTokenizer::train(sample, 280);
        assert_eq!(a.encode(sample), b.encode(sample));
    }

    #[test]
    fn bpe_stops_when_no_pair_repeats() {
        let tok = BpeTokenizer::train(b"abcdefg", 10_000);
        assert!(
            tok.vocab_size() < 300,
            "cannot invent merges without repeats"
        );
    }

    #[test]
    fn token_ids_stay_in_vocab() {
        let sample = b"some sample text for vocabulary bounds checking, repeated: \
                       some sample text for vocabulary bounds checking";
        let tok = BpeTokenizer::train(sample, 300);
        for &id in &tok.encode(sample) {
            assert!((id as usize) < tok.vocab_size());
        }
    }

    #[test]
    #[should_panic(expected = "vocab must cover all bytes")]
    fn rejects_sub_byte_vocab() {
        let _ = BpeTokenizer::train(b"x", 100);
    }
}
