//! Continuous-batching correctness: tokens produced under interleaved
//! scheduling are byte-identical to serial generation, admission is
//! bounded with graceful rejection, and deadline / cache-full retirement
//! fire with partial output intact.

use std::sync::Arc;
use std::time::Duration;

use apollo_infer::{
    generate, GenConfig, GenRequest, Outcome, SchedConfig, Scheduler, Server, SubmitError,
};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_obs::Obs;
use apollo_tensor::Rng;

fn tiny_model(seed: u64) -> Arc<LlamaModel> {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(seed);
    Arc::new(LlamaModel::new(&cfg, LinearMode::Dense, &mut rng))
}

/// A spread of prompts, lengths, seeds, and sampling settings. Request `i`
/// is fully determined by `i`, so the serial reference is reproducible.
fn mixed_requests(model: &LlamaModel, n: usize) -> Vec<GenRequest> {
    let vocab = model.config().vocab_size;
    let mut rng = Rng::seed_from_u64(0x5EED);
    (0..n)
        .map(|i| {
            let prompt_len = 1 + (i * 3) % 9;
            let prompt: Vec<u32> = (0..prompt_len).map(|_| rng.below(vocab) as u32).collect();
            GenRequest {
                prompt,
                cfg: GenConfig {
                    max_new_tokens: 6 + (i % 5) * 4,
                    temperature: if i % 2 == 0 { 0.0 } else { 0.9 },
                    top_k: if i % 3 == 0 { 0 } else { 8 },
                    top_p: if i % 4 == 0 { 1.0 } else { 0.95 },
                    seed: 1000 + i as u64,
                    stop_token: None,
                },
                deadline: None,
                adapter: None,
            }
        })
        .collect()
}

#[test]
fn interleaved_scheduling_is_byte_identical_to_serial() {
    let model = tiny_model(0x1F);
    let reqs = mixed_requests(&model, 6);
    // Serial reference: each request alone through the engine.
    let serial: Vec<Vec<u32>> = reqs
        .iter()
        .map(|r| generate(&model, &r.prompt, &r.cfg, |_| {}))
        .collect();

    let cfg = SchedConfig {
        max_active: 4,
        queue_cap: 16,
        prefill_chunk: 3, // long prompts prefill over several ticks
        kv_capacity: 64,
        prefix_cache_bytes: 0,
    };
    let mut sched = Scheduler::new(Arc::clone(&model), cfg, Obs::disabled());
    let ids: Vec<u64> = reqs
        .iter()
        .map(|r| sched.submit(r.clone()).expect("queue has room"))
        .collect();

    let mut results = Vec::new();
    let mut max_active = 0;
    while !sched.is_idle() {
        sched.tick();
        max_active = max_active.max(sched.active());
        results.extend(sched.take_finished());
    }
    assert!(
        max_active >= 4,
        "test must exercise real concurrency, saw at most {max_active} active"
    );
    assert_eq!(results.len(), reqs.len());
    for res in results {
        let idx = ids.iter().position(|&id| id == res.id).expect("known id");
        assert_eq!(
            res.tokens, serial[idx],
            "request {idx} diverged from serial generation"
        );
        assert_eq!(res.outcome, Outcome::Done);
    }
}

#[test]
fn stop_token_retires_early_and_matches_serial() {
    let model = tiny_model(0x2F);
    let prompt: Vec<u32> = vec![3, 1, 4, 1, 5];
    let mut cfg = GenConfig {
        max_new_tokens: 24,
        temperature: 0.8,
        seed: 7,
        ..GenConfig::default()
    };
    // Pick a token the sampler actually emits, then make it the stop token.
    let free_run = generate(&model, &prompt, &cfg, |_| {});
    cfg.stop_token = Some(free_run[2]);
    let serial = generate(&model, &prompt, &cfg, |_| {});
    assert_eq!(*serial.last().expect("nonempty"), free_run[2]);

    let mut sched = Scheduler::new(Arc::clone(&model), SchedConfig::default(), Obs::disabled());
    sched
        .submit(GenRequest {
            prompt,
            cfg,
            deadline: None,
            adapter: None,
        })
        .expect("queue has room");
    let results = sched.run_to_completion();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].tokens, serial);
    assert_eq!(results[0].outcome, Outcome::StopToken);
}

#[test]
fn admission_is_bounded_and_rejects_gracefully() {
    let model = tiny_model(0x3F);
    let cfg = SchedConfig {
        max_active: 2,
        queue_cap: 3,
        prefill_chunk: 4,
        kv_capacity: 16,
        prefix_cache_bytes: 0,
    };
    let mut sched = Scheduler::new(model, cfg, Obs::disabled());
    let ok_req = GenRequest {
        prompt: vec![1, 2, 3],
        cfg: GenConfig {
            max_new_tokens: 4,
            ..GenConfig::default()
        },
        deadline: None,
        adapter: None,
    };
    for _ in 0..3 {
        sched.submit(ok_req.clone()).expect("under queue_cap");
    }
    assert_eq!(
        sched.submit(ok_req.clone()),
        Err(SubmitError::QueueFull),
        "fourth request must be rejected, not queued"
    );
    assert_eq!(sched.queue_depth(), 3);

    // Invalid requests are rejected regardless of queue room.
    let mut fresh = Scheduler::new(tiny_model(0x3F), SchedConfig::default(), Obs::disabled());
    assert_eq!(
        fresh.submit(GenRequest {
            prompt: vec![],
            ..ok_req.clone()
        }),
        Err(SubmitError::EmptyPrompt)
    );
    assert_eq!(
        fresh.submit(GenRequest {
            prompt: vec![0; 513],
            ..ok_req.clone()
        }),
        Err(SubmitError::PromptTooLong)
    );

    // The full queue drains normally and rejected work can be resubmitted.
    let drained = sched.run_to_completion();
    assert_eq!(drained.len(), 3);
    sched.submit(ok_req).expect("room again after draining");
    assert_eq!(sched.run_to_completion().len(), 1);
}

#[test]
fn deadline_expiry_retires_with_partial_output() {
    let model = tiny_model(0x4F);
    let mut sched = Scheduler::new(Arc::clone(&model), SchedConfig::default(), Obs::disabled());
    // A zero deadline expires on the admission tick, before any decode.
    sched
        .submit(GenRequest {
            prompt: vec![1, 2],
            cfg: GenConfig::default(),
            deadline: Some(Duration::ZERO),
            adapter: None,
        })
        .expect("queue has room");
    // A generous deadline never fires.
    sched
        .submit(GenRequest {
            prompt: vec![1, 2],
            cfg: GenConfig {
                max_new_tokens: 4,
                ..GenConfig::default()
            },
            deadline: Some(Duration::from_secs(3600)),
            adapter: None,
        })
        .expect("queue has room");
    let mut results = sched.run_to_completion();
    results.sort_by_key(|r| r.id);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].outcome, Outcome::Deadline);
    assert!(results[0].tokens.is_empty(), "expired before decoding");
    assert_eq!(results[1].outcome, Outcome::Done);
    assert_eq!(results[1].tokens.len(), 4);
}

#[test]
fn cache_exhaustion_retires_with_cache_full() {
    let model = tiny_model(0x5F);
    let cfg = SchedConfig {
        max_active: 1,
        queue_cap: 4,
        prefill_chunk: 8,
        kv_capacity: 6,
        prefix_cache_bytes: 0,
    };
    let mut sched = Scheduler::new(Arc::clone(&model), cfg, Obs::disabled());
    sched
        .submit(GenRequest {
            prompt: vec![1, 2, 3, 4],
            cfg: GenConfig {
                max_new_tokens: 100, // cannot fit: only 2 decode feeds remain
                ..GenConfig::default()
            },
            deadline: None,
            adapter: None,
        })
        .expect("queue has room");
    let results = sched.run_to_completion();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].outcome, Outcome::CacheFull);
    // 4 prompt rows fill 4 slots; 2 more decode feeds fit, and each of the
    // 3 samples happens before its token would need feeding.
    assert_eq!(results[0].tokens.len(), 3);
    // The partial prefix still matches serial generation.
    let serial = generate(
        &model,
        &[1, 2, 3, 4],
        &GenConfig {
            max_new_tokens: 3,
            ..GenConfig::default()
        },
        |_| {},
    );
    assert_eq!(results[0].tokens, serial);
}

#[test]
fn scheduler_emits_retirement_metrics() {
    let model = tiny_model(0x6F);
    let obs = Obs::enabled(1);
    let mut sched = Scheduler::new(model, SchedConfig::default(), obs.clone());
    sched
        .submit(GenRequest {
            prompt: vec![1, 2, 3],
            cfg: GenConfig {
                max_new_tokens: 5,
                ..GenConfig::default()
            },
            deadline: None,
            adapter: None,
        })
        .expect("queue has room");
    sched.run_to_completion();
    assert_eq!(obs.counter_value("infer.requests_retired"), 1);
    assert_eq!(obs.counter_value("infer.prefill_tokens"), 3);
    assert_eq!(obs.counter_value("infer.decode_tokens"), 4);
}

#[test]
fn server_concurrent_submissions_match_serial() {
    let model = tiny_model(0x7F);
    let reqs = mixed_requests(&model, 5);
    let serial: Vec<Vec<u32>> = reqs
        .iter()
        .map(|r| generate(&model, &r.prompt, &r.cfg, |_| {}))
        .collect();

    let cfg = SchedConfig {
        max_active: 4,
        queue_cap: 8,
        prefill_chunk: 4,
        kv_capacity: 64,
        prefix_cache_bytes: 0,
    };
    let server = Server::start(Arc::clone(&model), cfg, Obs::disabled());
    let handles: Vec<_> = reqs
        .iter()
        .map(|r| server.submit(r.clone()).expect("queue has room"))
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let res = h.wait().expect("server completes accepted work");
        assert_eq!(res.tokens, serial[i], "request {i} diverged under serving");
        assert_eq!(res.outcome, Outcome::Done);
    }
    drop(server); // joins the worker
}

#[test]
fn cancel_frees_queued_and_active_requests() {
    let model = tiny_model(0x8F);
    let cfg = SchedConfig {
        max_active: 1,
        queue_cap: 4,
        prefill_chunk: 8,
        kv_capacity: 64,
        prefix_cache_bytes: 0,
    };
    let mut sched = Scheduler::new(Arc::clone(&model), cfg, Obs::disabled());
    let req = GenRequest {
        prompt: vec![1, 2, 3],
        cfg: GenConfig {
            max_new_tokens: 8,
            ..GenConfig::default()
        },
        deadline: None,
        adapter: None,
    };
    let active_id = sched.submit(req.clone()).expect("queue has room");
    let queued_id = sched.submit(req.clone()).expect("queue has room");
    sched.tick(); // admits the first, leaves the second queued

    // Cancelling the queued request retires it immediately, empty-handed.
    assert!(sched.cancel(queued_id));
    let queued_result = sched
        .take_finished()
        .into_iter()
        .find(|r| r.id == queued_id)
        .expect("queued cancel retires immediately");
    assert_eq!(queued_result.outcome, Outcome::Cancelled);
    assert!(queued_result.tokens.is_empty());

    // Cancelling the active request frees its slot on the next tick and
    // keeps the tokens generated so far (a serial-prefix, as always).
    assert!(sched.cancel(active_id));
    assert!(!sched.cancel(active_id), "double cancel must be a no-op");
    sched.tick();
    let active_result = sched
        .take_finished()
        .into_iter()
        .find(|r| r.id == active_id)
        .expect("active cancel retires on the next tick");
    assert_eq!(active_result.outcome, Outcome::Cancelled);
    let serial = generate(
        &model,
        &[1, 2, 3],
        &GenConfig {
            max_new_tokens: 8,
            ..GenConfig::default()
        },
        |_| {},
    );
    assert_eq!(
        active_result.tokens,
        serial[..active_result.tokens.len()],
        "partial output must stay a serial prefix"
    );
    assert!(sched.is_idle(), "cancelled work must free every slot");
    assert!(!sched.cancel(9999), "unknown ids report false");
}

#[test]
fn deadline_during_chunked_prefill_retires_without_output() {
    let model = tiny_model(0x9F);
    let cfg = SchedConfig {
        max_active: 1,
        queue_cap: 2,
        prefill_chunk: 1, // prefill spans many ticks
        kv_capacity: 64,
        prefix_cache_bytes: 0,
    };
    let mut sched = Scheduler::new(model, cfg, Obs::disabled());
    sched
        .submit(GenRequest {
            prompt: vec![1, 2, 3, 4, 5, 6],
            cfg: GenConfig {
                max_new_tokens: 8,
                ..GenConfig::default()
            },
            deadline: Some(Duration::from_millis(30)),
            adapter: None,
        })
        .expect("queue has room");
    // Two ticks feed two of six prompt rows; then the deadline passes
    // while prefill is still in progress.
    sched.tick();
    sched.tick();
    std::thread::sleep(Duration::from_millis(40));
    let results = sched.run_to_completion();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].outcome, Outcome::Deadline);
    assert!(
        results[0].tokens.is_empty(),
        "no token was sampled before expiry, none may be invented"
    );
    assert!(sched.is_idle(), "the half-prefilled slot must be reclaimed");
}

#[test]
fn deadline_expiry_beats_a_stop_token_arriving_the_same_tick() {
    let model = tiny_model(0xAF);
    let prompt = vec![4u32, 2];
    let gen = GenConfig {
        max_new_tokens: 8,
        ..GenConfig::default()
    };
    // Greedy first token, made the stop token for both cases below.
    let first = generate(&model, &prompt, &gen, |_| {})[0];
    let gen = GenConfig {
        stop_token: Some(first),
        ..gen
    };
    let cfg = SchedConfig {
        max_active: 1,
        queue_cap: 2,
        prefill_chunk: 1, // tick 1 feeds one row; tick 2 would sample
        kv_capacity: 64,
        prefix_cache_bytes: 0,
    };

    // Case A: the deadline expires between ticks. The expiry check runs
    // before decode, so the tick that would have sampled the stop token
    // retires the request as Deadline instead — with no tokens.
    let mut sched = Scheduler::new(Arc::clone(&model), cfg.clone(), Obs::disabled());
    sched
        .submit(GenRequest {
            prompt: prompt.clone(),
            cfg: gen.clone(),
            deadline: Some(Duration::from_millis(25)),
            adapter: None,
        })
        .expect("queue has room");
    sched.tick(); // admit + first prefill row; nothing sampled yet
    std::thread::sleep(Duration::from_millis(40));
    let results = sched.run_to_completion();
    assert_eq!(results[0].outcome, Outcome::Deadline);
    assert!(results[0].tokens.is_empty());

    // Case B: the stop token is sampled while the deadline is still
    // comfortably in the future — StopToken wins and keeps the token.
    let mut sched = Scheduler::new(model, cfg, Obs::disabled());
    sched
        .submit(GenRequest {
            prompt,
            cfg: gen,
            deadline: Some(Duration::from_secs(3600)),
            adapter: None,
        })
        .expect("queue has room");
    let results = sched.run_to_completion();
    assert_eq!(results[0].outcome, Outcome::StopToken);
    assert_eq!(results[0].tokens, vec![first]);
}

#[test]
fn cache_full_retirement_still_lands_during_drain() {
    let model = tiny_model(0xBF);
    let cfg = SchedConfig {
        max_active: 1,
        queue_cap: 4,
        prefill_chunk: 8,
        kv_capacity: 6,
        prefix_cache_bytes: 0,
    };
    let server = Server::start(model, cfg, Obs::disabled());
    let handle = server
        .submit(GenRequest {
            prompt: vec![1, 2, 3, 4],
            cfg: GenConfig {
                max_new_tokens: 100, // cannot fit in a 6-slot cache
                ..GenConfig::default()
            },
            deadline: None,
            adapter: None,
        })
        .expect("queue has room");
    server.begin_drain();
    // Draining rejects new work...
    let rejected = server.submit(GenRequest {
        prompt: vec![1],
        cfg: GenConfig::default(),
        deadline: None,
        adapter: None,
    });
    assert!(
        matches!(rejected, Err(SubmitError::QueueFull)),
        "draining server must not admit new requests"
    );
    // ...but the in-flight request still retires with its real outcome.
    let res = handle.wait().expect("drain completes in-flight work");
    assert_eq!(res.outcome, Outcome::CacheFull);
    assert_eq!(res.tokens.len(), 3);
}

#[test]
fn wait_timeout_times_out_then_completes() {
    let model = tiny_model(0xCF);
    let cfg = SchedConfig {
        max_active: 1,
        queue_cap: 2,
        prefill_chunk: 8,
        kv_capacity: 4096,
        prefix_cache_bytes: 0,
    };
    let server = Server::start(model, cfg, Obs::disabled());
    let mut handle = server
        .submit(GenRequest {
            prompt: vec![1, 2],
            cfg: GenConfig {
                max_new_tokens: 2000,
                ..GenConfig::default()
            },
            deadline: None,
            adapter: None,
        })
        .expect("queue has room");
    // 2000 decode ticks cannot finish within a millisecond.
    assert!(matches!(
        handle.wait_timeout(Duration::from_millis(1)),
        Err(apollo_infer::WaitError::TimedOut)
    ));
    // The handle stays live after a timeout; a patient wait succeeds.
    let res = handle
        .wait_timeout(Duration::from_secs(120))
        .expect("request completes");
    assert_eq!(res.outcome, Outcome::Done);
    assert_eq!(res.tokens.len(), 2000);
    assert_eq!(server.in_flight(), 0);
}

#[test]
fn dropping_a_handle_cancels_the_in_flight_request() {
    let model = tiny_model(0xDF);
    let cfg = SchedConfig {
        max_active: 1,
        queue_cap: 2,
        prefill_chunk: 8,
        kv_capacity: 4096,
        prefix_cache_bytes: 0,
    };
    let obs = Obs::enabled(1);
    let server = Server::start(Arc::clone(&model), cfg, obs.clone());
    let handle = server
        .submit(GenRequest {
            prompt: vec![1, 2, 3],
            cfg: GenConfig {
                max_new_tokens: 4000, // would run for a long time
                ..GenConfig::default()
            },
            deadline: None,
            adapter: None,
        })
        .expect("queue has room");
    drop(handle); // client walks away

    // The cancel must reach the scheduler and free the slot.
    let t0 = std::time::Instant::now();
    while server.in_flight() > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "dropped handle leaked its slot"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(obs.counter_value("infer.requests_retired"), 1);

    // The server keeps working at full capacity afterwards.
    let reqs = mixed_requests(&model, 2);
    for (i, req) in reqs.iter().enumerate() {
        let serial = generate(&model, &req.prompt, &req.cfg, |_| {});
        let res = server
            .submit(req.clone())
            .expect("queue has room")
            .wait()
            .expect("completes");
        assert_eq!(res.tokens, serial, "request {i} diverged after a cancel");
    }
}

#[test]
fn rejections_are_counted_by_reason() {
    let model = tiny_model(0xEF);
    let cfg = SchedConfig {
        max_active: 1,
        queue_cap: 1,
        prefill_chunk: 4,
        kv_capacity: 8,
        prefix_cache_bytes: 0,
    };
    let obs = Obs::enabled(1);
    let mut sched = Scheduler::new(model, cfg, obs.clone());
    let ok = GenRequest {
        prompt: vec![1, 2],
        cfg: GenConfig {
            max_new_tokens: 2,
            ..GenConfig::default()
        },
        deadline: None,
        adapter: None,
    };
    sched.submit(ok.clone()).expect("first fits");
    let _ = sched.submit(ok.clone()); // queue full
    let _ = sched.submit(GenRequest {
        prompt: vec![],
        ..ok.clone()
    });
    let _ = sched.submit(GenRequest {
        prompt: vec![0; 9],
        ..ok.clone()
    });
    let _ = sched.submit(GenRequest {
        prompt: vec![0; 9],
        ..ok
    });
    assert_eq!(obs.counter_value("infer.rejected.queue_full"), 1);
    assert_eq!(obs.counter_value("infer.rejected.empty_prompt"), 1);
    assert_eq!(obs.counter_value("infer.rejected.prompt_too_long"), 2);
}
