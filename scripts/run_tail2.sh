#!/bin/sh
set -x
run() {
  bin=$1; scale=$2
  APOLLO_SCALE=$scale cargo run -q --release -p apollo-bench --bin "$bin" \
    > "results/logs/$bin.log" 2>&1
}
run table3_llama7b 0.6
run fig2_llama7b 0.6
run table4_commonsense 0.5
run table6_quantized 0.4
run table7_granularity 0.4
run table5_mmlu 0.5
run fig3_structured_lr 0.6
run fig4_ratio 0.7
run fig6_curves 0.5
run fig9_svd_spikes 1
run fig7_longcontext 0.4
run ablations 0.5
