//! The paper's learning-rate schedule: linear warmup over the first 10% of
//! steps, then cosine annealing down to 10% of the peak LR (Appendix A.4).

use serde::{Deserialize, Serialize};

/// Warmup + cosine-decay schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    /// Peak learning rate.
    pub peak_lr: f32,
    /// Total training steps.
    pub total_steps: usize,
    /// Fraction of steps spent in linear warmup (0.1 in the paper).
    pub warmup_frac: f32,
    /// Final LR as a fraction of the peak (0.1 in the paper).
    pub min_lr_frac: f32,
}

impl LrSchedule {
    /// The paper's schedule for a given peak LR and step budget.
    pub fn paper_default(peak_lr: f32, total_steps: usize) -> Self {
        LrSchedule {
            peak_lr,
            total_steps,
            warmup_frac: 0.1,
            min_lr_frac: 0.1,
        }
    }

    /// Number of warmup steps, computed in integer arithmetic so the
    /// boundary lands exactly on `total_steps * warmup_frac` at any budget.
    /// A float product (f32 *or* f64) drifts here: `0.1f32` is
    /// 0.10000000149…, so `1e9 as f32 * 0.1` truncates to a warmup one step
    /// off the exact `total_steps / 10`, and a resumed run would disagree
    /// with the original about which step the cosine phase starts on. The
    /// fraction is carried as a rational with a 10^6 denominator (f32 has
    /// ~7 significant digits, so round-tripping through parts-per-million
    /// is lossless for any sensible fraction).
    pub fn warmup_steps(&self) -> usize {
        let ppm = (f64::from(self.warmup_frac) * 1e6).round() as u128;
        let warmup = (self.total_steps as u128 * ppm) / 1_000_000;
        (warmup as usize).max(1)
    }

    /// Learning rate at `step` (0-based).
    pub fn lr_at(&self, step: usize) -> f32 {
        let warmup = self.warmup_steps();
        if step < warmup {
            return self.peak_lr * (step + 1) as f32 / warmup as f32;
        }
        let min_lr = self.peak_lr * self.min_lr_frac;
        let span = (self.total_steps.saturating_sub(warmup)).max(1) as f32;
        let t = ((step - warmup) as f32 / span).min(1.0);
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        min_lr + (self.peak_lr - min_lr) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_linearly_to_peak() {
        let s = LrSchedule::paper_default(1.0, 100);
        assert!(s.lr_at(0) > 0.0);
        assert!(s.lr_at(4) < s.lr_at(8));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6, "end of warmup hits peak");
    }

    #[test]
    fn decays_to_min_fraction() {
        let s = LrSchedule::paper_default(1.0, 100);
        let last = s.lr_at(99);
        assert!((last - 0.1).abs() < 0.02, "final lr {last}");
    }

    #[test]
    fn monotone_decay_after_warmup() {
        let s = LrSchedule::paper_default(0.01, 200);
        let mut prev = f32::MAX;
        for step in 20..200 {
            let lr = s.lr_at(step);
            assert!(lr <= prev + 1e-9, "not monotone at {step}");
            prev = lr;
        }
    }

    #[test]
    fn steps_beyond_total_stay_at_min() {
        let s = LrSchedule::paper_default(1.0, 50);
        assert!((s.lr_at(500) - 0.1).abs() < 1e-5);
    }

    #[test]
    fn tiny_budgets_do_not_divide_by_zero() {
        let s = LrSchedule::paper_default(1.0, 1);
        assert!(s.lr_at(0).is_finite());
        assert!(s.lr_at(1).is_finite());
    }

    #[test]
    fn warmup_is_exact_at_any_budget() {
        // f32 can't represent 0.1, so the old `total as f32 * frac as usize`
        // drifted off `total / 10` once the budget grew past f32's integer
        // precision. The integer path must hit the exact tenth everywhere.
        for total in [10, 100, 1_000, 150_000, 10_000_000, 1_000_000_000] {
            let s = LrSchedule::paper_default(1.0, total);
            assert_eq!(s.warmup_steps(), total / 10, "budget {total}");
        }
    }

    #[test]
    fn warmup_boundary_is_continuous() {
        // The last warmup step must reach the peak exactly and the first
        // cosine step must start at the peak (t = 0 → cos factor 1), so a
        // run resumed on either side of the boundary sees the same curve.
        for total in [100, 1_000, 150_000, 1_000_000_000] {
            let s = LrSchedule::paper_default(1.0, total);
            let warmup = s.warmup_steps();
            assert_eq!(s.lr_at(warmup - 1), 1.0, "peak at end of warmup");
            assert_eq!(s.lr_at(warmup), 1.0, "cosine starts at the peak");
            assert!(s.lr_at(warmup + 1) <= 1.0);
        }
    }
}
