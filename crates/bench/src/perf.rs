//! Shared types and measurement helpers for the performance-regression
//! harness (`perf_kernels` emits `BENCH_kernels.json` / `BENCH_train.json`,
//! `perf_check` compares a fresh run against the committed baseline).
//!
//! The JSON schema is deliberately flat so the files diff cleanly in PRs
//! and `jq` one-liners work: one entry per `(shape, kernel)` pair with the
//! measured GFLOP/s, one entry per optimizer with measured steps/sec.

use std::time::Instant;

use apollo_nn::ModelConfig;
use serde::{Deserialize, Serialize};

/// One matmul micro-benchmark result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelEntry {
    /// Proxy-shape label (e.g. `mlp-7b`).
    pub shape: String,
    /// Kernel variant: `matmul`, `matmul_transb`, or `matmul_transa`.
    pub kernel: String,
    /// Output rows.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Median throughput in GFLOP/s (`2·m·k·n` FLOPs per call).
    pub gflops: f64,
}

/// `BENCH_kernels.json`: matmul GFLOP/s at the Table-8 proxy shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel thread count the run used.
    pub threads: usize,
    /// `full` or `smoke` (fewer, shorter reps).
    pub mode: String,
    /// One entry per `(shape, kernel)` pair.
    pub entries: Vec<KernelEntry>,
}

/// One optimizer's tiny-proxy pretrain throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainEntry {
    /// Optimizer label (the `Method` registry label).
    pub optimizer: String,
    /// Optimizer steps per wall-clock second.
    pub steps_per_sec: f64,
    /// Total wall-clock seconds of the run.
    pub wall_secs: f64,
    /// Final training loss (sanity anchor: perf PRs must not move it).
    pub final_loss: f32,
}

/// `BENCH_train.json`: steps/sec for a tiny-proxy pretrain per optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Proxy model name.
    pub model: String,
    /// Optimizer steps per run.
    pub steps: usize,
    /// Batch size.
    pub batch: usize,
    /// Kernel thread count the run used.
    pub threads: usize,
    /// One entry per optimizer.
    pub entries: Vec<TrainEntry>,
}

/// One inference-throughput measurement, keyed by metric name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferEntry {
    /// Metric key, e.g. `prefill_tok_per_sec` or `kv_speedup`.
    pub metric: String,
    /// Measured value (tokens/sec for throughputs, ratio for speedups).
    pub value: f64,
    /// `tok/s` or `x`.
    pub unit: String,
}

/// `BENCH_infer.json`: generation throughput on the tiny proxy — prefill
/// and KV-cached decode tokens/sec, the KV-vs-full-recompute speedup, and
/// the continuous-batching-vs-serial speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferReport {
    /// Proxy model name.
    pub model: String,
    /// Kernel thread count the run used.
    pub threads: usize,
    /// `full` or `smoke` (fewer timing reps).
    pub mode: String,
    /// Numerics mode of the *exact-path* measurements (`exact`); the
    /// `fast_*` / `int8_*` entries always run the relaxed tier.
    pub numerics: String,
    /// Runtime-detected SIMD tier the fast entries dispatched to
    /// (`avx2` / `portable`) — fast-mode numbers from different tiers are
    /// not comparable.
    pub simd_tier: String,
    /// Prompt length of the single-sequence measurements.
    pub prompt_tokens: usize,
    /// Decoded tokens per single-sequence measurement.
    pub decode_tokens: usize,
    /// Concurrent requests in the batched-vs-serial measurement.
    pub batch_requests: usize,
    /// One entry per metric.
    pub entries: Vec<InferEntry>,
}

/// `BENCH_serve.json`: end-to-end serving latency and goodput measured by
/// the open-loop Poisson load generator against an in-process HTTP
/// front-end — tail latencies under steady load plus the shed rate under
/// deliberate overload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Proxy model name.
    pub model: String,
    /// Kernel thread count the run used.
    pub threads: usize,
    /// `full` or `smoke` (fewer requests).
    pub mode: String,
    /// Numerics mode the serving measurements ran under.
    pub numerics: String,
    /// Runtime-detected SIMD tier (`avx2` / `portable`).
    pub simd_tier: String,
    /// Requests in the steady-load measurement.
    pub requests: usize,
    /// Offered steady-load arrival rate (req/s).
    pub rate: f64,
    /// One entry per metric (latencies in `ms`, goodput in `req/s`,
    /// shed rate as a `ratio`).
    pub entries: Vec<InferEntry>,
}

impl ServeReport {
    /// Per-metric best-merge of a previous run into this one. Direction
    /// follows the unit: latency (`ms`) and memory (`bytes`) keep the
    /// minimum, everything else keeps the maximum — "best observed" either
    /// way, which is what the regression gate compares.
    pub fn merge_best(&mut self, prev: &Self) {
        for e in &mut self.entries {
            if let Some(p) = prev.entries.iter().find(|p| p.metric == e.metric) {
                e.value = if e.unit == "ms" || e.unit == "bytes" {
                    e.value.min(p.value)
                } else {
                    e.value.max(p.value)
                };
            }
        }
    }
}

impl KernelReport {
    /// Per-entry max-merge of a previous run into this one, matched on
    /// `(shape, kernel)`. Used by the CI smoke stage to measure every
    /// entry in two independent sweeps and keep the best: a CPU-steal
    /// burst poisons one sweep, a genuine regression poisons both.
    pub fn merge_best(&mut self, prev: &Self) {
        for e in &mut self.entries {
            if let Some(p) = prev
                .entries
                .iter()
                .find(|p| p.shape == e.shape && p.kernel == e.kernel)
            {
                e.gflops = e.gflops.max(p.gflops);
            }
        }
    }
}

impl TrainReport {
    /// Per-optimizer max-merge of a previous run's throughput into this
    /// one. The `final_loss` bit-anchor keeps the fresh run's value — it
    /// must be identical across runs anyway.
    pub fn merge_best(&mut self, prev: &Self) {
        for e in &mut self.entries {
            if let Some(p) = prev.entries.iter().find(|p| p.optimizer == e.optimizer) {
                if p.steps_per_sec > e.steps_per_sec {
                    e.steps_per_sec = p.steps_per_sec;
                    e.wall_secs = p.wall_secs;
                }
            }
        }
    }
}

impl InferReport {
    /// Per-metric max-merge of a previous run into this one. Speedup
    /// ratios merge independently of their numerator/denominator
    /// throughputs — each entry is "best observed", which is what the
    /// regression gate compares.
    pub fn merge_best(&mut self, prev: &Self) {
        for e in &mut self.entries {
            if let Some(p) = prev.entries.iter().find(|p| p.metric == e.metric) {
                e.value = e.value.max(p.value);
            }
        }
    }
}

/// The Table-8 proxy shapes the kernel microbench sweeps: per-layer weight
/// shapes of the CPU proxy models driven by a `batch·seq = 128` activation
/// panel, plus square hidden-dim shapes up to the llama-60m hidden size
/// (512, the largest proxy shape — the ≥2× acceptance gate is measured
/// there).
pub fn proxy_shapes() -> Vec<(String, usize, usize, usize)> {
    let rows = 2 * 64; // batch 2 · seq 64, the proxy activation panel
    let mut shapes = Vec::new();
    for cfg in [ModelConfig::tiny_60m(), ModelConfig::tiny_7b()] {
        let tag = cfg.name.trim_start_matches("tiny-").to_string();
        shapes.push((format!("attn-{tag}"), rows, cfg.hidden, cfg.hidden));
        shapes.push((format!("mlp-{tag}"), rows, cfg.hidden, cfg.intermediate));
        shapes.push((format!("lmhead-{tag}"), rows, cfg.hidden, cfg.vocab_size));
    }
    shapes.push(("sq-256".to_string(), 256, 256, 256));
    shapes.push(("sq-512".to_string(), 512, 512, 512));
    shapes
}

/// Times `f` (called repeatedly) and returns the best (minimum)
/// seconds-per-call over `reps` measurement repetitions, each at least
/// `min_secs` long.
///
/// Best-of-N rather than median: the regression gate runs on shared CI
/// boxes where a scheduler hiccup can poison half the samples, and the
/// minimum estimates the machine's capability (what a code change can
/// regress) instead of its momentary load.
pub fn time_best(reps: usize, min_secs: f64, mut f: impl FnMut()) -> f64 {
    // Warmup.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut iters = 0u32;
        let start = Instant::now();
        loop {
            f();
            iters += 1;
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= min_secs {
                best = best.min(elapsed / f64::from(iters));
                break;
            }
        }
    }
    best
}

/// Relative change of `fresh` vs `base` in percent (positive = faster).
pub fn delta_pct(base: f64, fresh: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    (fresh / base - 1.0) * 100.0
}
