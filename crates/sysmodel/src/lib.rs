//! Analytic GPU memory and throughput model.
//!
//! The paper's system-level results (Fig. 1 middle/right, Fig. 9, Table 3's
//! memory column, and the §5.3 claims — LLaMA-13B on one A100-80G with
//! naive DDP, LLaMA-7B under 12 GB with quantization) are *memory
//! accounting* and *step-time accounting* results. This crate reproduces
//! them from first principles:
//!
//! - [`TrainingMemoryModel`] — bytes for weights (BF16 or INT8), gradients
//!   (full or layer-wise per Lv et al., 2023), optimizer states (Table 1
//!   formulas from [`apollo_optim::memory`]), and activations;
//! - [`ThroughputModel`] — step time from model FLOPs and GPU throughput,
//!   plus the periodic SVD stall of GaLore-type optimizers (calibrated to
//!   the paper's "10 minutes per LLaMA-7B subspace update"), and the
//!   memory-bound maximum batch-size search that yields the paper's ~3×
//!   throughput result;
//! - [`claims`] — checkers for the headline §5.3 claims.
//!
//! No GPU is touched; everything is closed-form and unit-tested against the
//! constants the paper publishes.

mod gpu;
mod memory;
mod throughput;

pub mod claims;

pub use gpu::Gpu;
pub use memory::{MemoryBreakdown, MemoryOptions, TrainingMemoryModel, WeightPrecision};
pub use throughput::{StepTimeSeries, ThroughputModel, ThroughputReport};
