//! Fault plan for the HTTP serving front-end: malformed requests,
//! slow-loris, mid-stream disconnects, overload bursts, and graceful
//! drain. The invariants under every fault: no panic, no leaked
//! scheduler slot, the documented status code, and a server that keeps
//! serving afterwards.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use apollo_infer::net::{self, ChunkedReader, HttpLimits};
use apollo_infer::{generate, Frontend, GenConfig, SchedConfig, ServeConfig};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_obs::Obs;
use apollo_tensor::Rng;
use serde::Value;

fn tiny_model(seed: u64) -> Arc<LlamaModel> {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(seed);
    Arc::new(LlamaModel::new(&cfg, LinearMode::Dense, &mut rng))
}

/// A front-end tuned for fast tests: short timeouts, small queue.
fn start_frontend(sched: SchedConfig, serve: ServeConfig) -> Frontend {
    Frontend::start(tiny_model(0x11), sched, serve, Obs::disabled()).expect("bind loopback")
}

fn test_sched() -> SchedConfig {
    SchedConfig {
        max_active: 2,
        queue_cap: 4,
        prefill_chunk: 8,
        kv_capacity: 4096,
        prefix_cache_bytes: 0,
    }
}

fn test_serve() -> ServeConfig {
    ServeConfig {
        limits: HttpLimits {
            idle_timeout: Duration::from_millis(300),
            header_deadline: Duration::from_millis(200),
            ..HttpLimits::default()
        },
        shed_watermark: 4,
        default_deadline: Duration::from_secs(5),
        drain_deadline: Duration::from_secs(5),
        wait_slack: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

fn post_generate(addr: &str, body: &str) -> net::Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    net::write_request(&mut stream, "POST", "/generate", &[], body.as_bytes()).expect("write");
    net::read_response(&mut stream, Duration::from_secs(20)).expect("response")
}

fn tokens_from(body: &[u8]) -> Vec<u32> {
    let value: Value = serde_json::from_str(&String::from_utf8_lossy(body)).expect("json body");
    let Ok(Value::Arr(items)) = value.get_field("tokens") else {
        panic!("response missing tokens: {}", String::from_utf8_lossy(body));
    };
    items
        .iter()
        .map(|v| match v {
            Value::Num(n) => n.as_u64().expect("token id") as u32,
            other => panic!("non-numeric token {other:?}"),
        })
        .collect()
}

fn wait_in_flight_zero(frontend: &Frontend, budget: Duration) {
    let deadline = Instant::now() + budget;
    while frontend.in_flight() > 0 {
        assert!(
            Instant::now() < deadline,
            "in-flight requests leaked: {} still held",
            frontend.in_flight()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn generate_over_http_matches_the_serial_engine() {
    let model = tiny_model(0x11);
    let frontend = start_frontend(test_sched(), test_serve());
    let addr = frontend.local_addr().to_string();

    let prompt = vec![3u32, 14, 15, 9, 2];
    let cfg = GenConfig {
        max_new_tokens: 12,
        seed: 7,
        ..GenConfig::default()
    };
    let serial = generate(&model, &prompt, &cfg, |_| {});

    let body = "{\"prompt\":[3,14,15,9,2],\"max_new_tokens\":12,\"seed\":7}";
    let resp = post_generate(&addr, body);
    assert_eq!(
        resp.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&resp.body)
    );
    assert_eq!(
        tokens_from(&resp.body),
        serial,
        "HTTP path must stay byte-identical"
    );
    frontend.shutdown();
}

#[test]
fn streaming_chunks_agree_with_the_final_result() {
    let frontend = start_frontend(test_sched(), test_serve());
    let addr = frontend.local_addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let body = "{\"prompt\":[1,2,3],\"max_new_tokens\":10,\"stream\":true}";
    net::write_request(&mut stream, "POST", "/generate", &[], body.as_bytes()).expect("write");
    let head = net::read_response_head(&mut stream, Duration::from_secs(20)).expect("head");
    assert_eq!(head.status, 200);
    assert_eq!(head.header("transfer-encoding"), Some("chunked"));

    let mut reader = ChunkedReader::new(&mut stream, head.leftover, Duration::from_secs(20));
    let mut streamed: Vec<u32> = Vec::new();
    let mut finals: Option<Vec<u32>> = None;
    while let Some(chunk) = reader.next_chunk().expect("chunk") {
        for line in String::from_utf8_lossy(&chunk).lines() {
            let value: Value = serde_json::from_str(line).expect("ndjson line");
            if let Ok(Value::Num(n)) = value.get_field("token") {
                streamed.push(n.as_u64().expect("token") as u32);
            }
            if value.get_field("done").is_ok() {
                let Ok(Value::Arr(items)) = value.get_field("tokens") else {
                    panic!("done line without tokens: {line}");
                };
                finals = Some(
                    items
                        .iter()
                        .map(|v| match v {
                            Value::Num(n) => n.as_u64().expect("token") as u32,
                            other => panic!("bad token {other:?}"),
                        })
                        .collect(),
                );
            }
        }
    }
    let finals = finals.expect("stream must end with a done line");
    assert_eq!(
        streamed, finals,
        "streamed tokens must equal the final list"
    );
    assert_eq!(finals.len(), 10);
    frontend.shutdown();
}

#[test]
fn malformed_requests_get_400_and_the_server_keeps_serving() {
    let frontend = start_frontend(test_sched(), test_serve());
    let addr = frontend.local_addr().to_string();

    // Garbage request line.
    let mut s1 = TcpStream::connect(&addr).expect("connect");
    s1.write_all(b"THIS IS NOT HTTP\r\n\r\n").expect("write");
    let resp = net::read_response(&mut s1, Duration::from_secs(5)).expect("resp");
    assert_eq!(resp.status, 400);

    // Valid HTTP head, invalid JSON body.
    let resp = post_generate(&addr, "{not json");
    assert_eq!(resp.status, 400);

    // Valid JSON, missing prompt.
    let resp = post_generate(&addr, "{\"max_new_tokens\":4}");
    assert_eq!(resp.status, 400);

    // Empty prompt.
    let resp = post_generate(&addr, "{\"prompt\":[]}");
    assert_eq!(resp.status, 400);

    // Prompt longer than the KV capacity.
    let long: Vec<String> = (0..5000).map(|i| (i % 7).to_string()).collect();
    let resp = post_generate(&addr, &format!("{{\"prompt\":[{}]}}", long.join(",")));
    assert_eq!(resp.status, 413);

    // Unknown path and wrong method.
    let mut s2 = TcpStream::connect(&addr).expect("connect");
    net::write_request(&mut s2, "GET", "/nope", &[], b"").expect("write");
    assert_eq!(
        net::read_response(&mut s2, Duration::from_secs(5))
            .expect("resp")
            .status,
        404
    );
    let mut s3 = TcpStream::connect(&addr).expect("connect");
    net::write_request(&mut s3, "DELETE", "/generate", &[], b"").expect("write");
    assert_eq!(
        net::read_response(&mut s3, Duration::from_secs(5))
            .expect("resp")
            .status,
        405
    );

    // After all that abuse, a well-formed request still succeeds.
    let resp = post_generate(&addr, "{\"prompt\":[1,2],\"max_new_tokens\":2}");
    assert_eq!(resp.status, 200);
    assert_eq!(frontend.in_flight(), 0);
    frontend.shutdown();
}

#[test]
fn slow_loris_is_cut_off_by_the_header_deadline() {
    let frontend = start_frontend(test_sched(), test_serve());
    let addr = frontend.local_addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let t0 = Instant::now();
    // Trickle bytes slower than the 200ms header deadline allows.
    let head = b"POST /generate HTTP/1.1\r\n";
    let mut cut_off = false;
    for byte in head.iter().cycle().take(200) {
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            cut_off = true; // server closed on us
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    if !cut_off {
        // Writes may keep "succeeding" into socket buffers; the read
        // settles it: either a 408 or a close, never a hang.
        match net::read_response(&mut stream, Duration::from_secs(5)) {
            Ok(resp) => assert_eq!(resp.status, 408),
            Err(net::HttpError::Truncated) | Err(net::HttpError::Io(_)) => {}
            Err(e) => panic!("unexpected slow-loris outcome: {e}"),
        }
    }
    assert!(
        t0.elapsed() < Duration::from_secs(4),
        "slow-loris held the connection too long"
    );
    // The server is still healthy.
    let resp = post_generate(&addr, "{\"prompt\":[5],\"max_new_tokens\":2}");
    assert_eq!(resp.status, 200);
    frontend.shutdown();
}

#[test]
fn mid_stream_disconnect_cancels_and_frees_the_slot() {
    let frontend = start_frontend(test_sched(), test_serve());
    let addr = frontend.local_addr().to_string();

    // A long streaming generation we will abandon after one chunk.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let body = "{\"prompt\":[1,2,3],\"max_new_tokens\":4000,\"stream\":true}";
    net::write_request(&mut stream, "POST", "/generate", &[], body.as_bytes()).expect("write");
    let head = net::read_response_head(&mut stream, Duration::from_secs(20)).expect("head");
    assert_eq!(head.status, 200);
    let mut reader = ChunkedReader::new(&mut stream, head.leftover, Duration::from_secs(20));
    let first = reader.next_chunk().expect("first chunk");
    assert!(
        first.is_some(),
        "stream produced no chunk before disconnect"
    );
    drop(stream); // vanish mid-stream

    // The cancel must propagate: no slot may stay pinned.
    wait_in_flight_zero(&frontend, Duration::from_secs(10));

    // And the freed slot is immediately usable.
    let resp = post_generate(&addr, "{\"prompt\":[9,8],\"max_new_tokens\":3}");
    assert_eq!(resp.status, 200);
    frontend.shutdown();
}

#[test]
fn overload_is_shed_with_retry_after_and_recovers() {
    let sched = SchedConfig {
        max_active: 1,
        queue_cap: 4,
        prefill_chunk: 8,
        kv_capacity: 20480,
        prefix_cache_bytes: 0,
    };
    let mut serve = test_serve();
    serve.shed_watermark = 2;
    serve.max_new_tokens_cap = 20000;
    let frontend = start_frontend(sched, serve);
    let addr = frontend.local_addr().to_string();

    // Blockers: two long generations (exactly the watermark) that pin the
    // single slot and the queue. Their 6s deadline bounds the test: they
    // answer 200 with whatever they produced by then. Probes past them
    // must shed.
    let mut blockers = Vec::new();
    for i in 0..2 {
        let addr = addr.clone();
        blockers.push(std::thread::spawn(move || {
            let body =
                format!("{{\"prompt\":[{i}],\"max_new_tokens\":20000,\"deadline_ms\":6000}}");
            post_generate(&addr, body.as_str()).status
        }));
    }
    // Wait for enough of them to be in flight.
    let t0 = Instant::now();
    while frontend.in_flight() < 2 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "blockers never reached the watermark (in_flight {})",
            frontend.in_flight()
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // While over the watermark, new work must shed with 429 + Retry-After.
    // A blocker may retire between our check and the server's, so permit
    // the rare 200 and keep probing while the overload lasts.
    let mut shed_seen = 0usize;
    while frontend.in_flight() >= 2 && shed_seen < 3 && t0.elapsed() < Duration::from_secs(20) {
        let resp = post_generate(&addr, "{\"prompt\":[7],\"max_new_tokens\":1}");
        if resp.status == 429 {
            let secs: u64 = resp
                .header("retry-after")
                .expect("429 must carry Retry-After")
                .parse()
                .expect("Retry-After must be integral seconds");
            assert!(secs >= 1);
            shed_seen += 1;
        } else {
            assert_eq!(resp.status, 200, "unexpected status under overload");
        }
    }
    assert!(shed_seen > 0, "overload past the watermark never shed");

    for blocker in blockers {
        assert_eq!(blocker.join().expect("no panic"), 200);
    }
    wait_in_flight_zero(&frontend, Duration::from_secs(10));
    let resp = post_generate(&addr, "{\"prompt\":[4],\"max_new_tokens\":2}");
    assert_eq!(resp.status, 200, "server must recover after the overload");
    frontend.shutdown();
}

#[test]
fn drain_finishes_in_flight_and_rejects_new_work() {
    let sched = SchedConfig {
        max_active: 1,
        queue_cap: 4,
        prefill_chunk: 8,
        kv_capacity: 20480,
        prefix_cache_bytes: 0,
    };
    let mut serve = test_serve();
    serve.drain_deadline = Duration::from_secs(20);
    serve.max_new_tokens_cap = 20000;
    serve.wait_slack = Duration::from_secs(20);
    let frontend = start_frontend(sched, serve);
    let addr = frontend.local_addr().to_string();

    // In-flight long request, bounded by its own deadline: it either
    // finishes or retires at the 3s deadline — well inside the drain
    // budget, but far slower than the drain trigger below.
    let addr1 = addr.clone();
    let in_flight = std::thread::spawn(move || {
        let body = "{\"prompt\":[1,2],\"max_new_tokens\":20000,\"deadline_ms\":3000}";
        post_generate(&addr1, body).status
    });
    // Wait until the server actually holds it.
    let t0 = Instant::now();
    while frontend.in_flight() == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "request never admitted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // A keep-alive connection opened before the drain: its generate must
    // see 503 once draining starts.
    let addr2 = addr.clone();
    let late = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(&addr2).expect("connect");
        std::thread::sleep(Duration::from_millis(150)); // drain is underway
        let body = "{\"prompt\":[3],\"max_new_tokens\":2}";
        net::write_request(&mut stream, "POST", "/generate", &[], body.as_bytes()).expect("write");
        net::read_response(&mut stream, Duration::from_secs(10)).expect("resp")
    });

    std::thread::sleep(Duration::from_millis(20));
    let report = frontend.shutdown();
    assert_eq!(report.in_flight_at_drain, 1);
    assert_eq!(
        report.drained, 1,
        "the in-flight request must finish: {report:?}"
    );
    assert_eq!(
        report.forced, 0,
        "nothing should be left running: {report:?}"
    );

    assert_eq!(in_flight.join().expect("no panic"), 200);
    let late_resp = late.join().expect("no panic");
    assert_eq!(late_resp.status, 503, "mid-drain generate must be rejected");
    assert!(late_resp.header("retry-after").is_some());
}

#[test]
fn loadgen_fault_plan_leaves_the_server_healthy() {
    let frontend = start_frontend(test_sched(), test_serve());
    let addr = frontend.local_addr().to_string();

    let cfg = apollo_infer::LoadConfig {
        addr: addr.clone(),
        requests: 30,
        rate: 200.0,
        seed: 0xFA117,
        prompt_len: 4,
        max_new_tokens: 4,
        deadline_ms: 5_000,
        faults: apollo_infer::FaultMix::default(), // 5% of each class
        ..apollo_infer::LoadConfig::default()
    };
    let report = apollo_infer::run_loadgen(&cfg).expect("loadgen reaches the server");
    assert!(
        report.ok > 0,
        "well-formed load must mostly succeed: {report:?}"
    );
    assert_eq!(
        report.transport_errors, 0,
        "no request may die on transport: {report:?}"
    );
    assert_eq!(
        report.faults_expected, report.faults_injected,
        "every fault probe must see the documented response: {report:?}"
    );
    assert!(report.p50_ms > 0.0 && report.p999_ms >= report.p99_ms);

    // The abused server drains to zero and still answers.
    wait_in_flight_zero(&frontend, Duration::from_secs(10));
    let resp = post_generate(&addr, "{\"prompt\":[1],\"max_new_tokens\":2}");
    assert_eq!(resp.status, 200);
    let report = frontend.shutdown();
    assert_eq!(report.forced, 0, "clean drain after the fault plan");
}

// --- multi-tenant serving: adapter routing and GET /stats -----------------

/// A compatible LoRA adapter with a nonzero delta (B is zero-initialized
/// at construction, so perturb it).
fn test_adapter(seed: u64) -> apollo_nn::LoraAdapter {
    use apollo_tensor::Matrix;
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(seed);
    let mut m = LlamaModel::new(
        &cfg,
        LinearMode::LoRa {
            rank: 2,
            alpha: 4.0,
        },
        &mut rng,
    );
    for p in &mut m.params {
        if p.name.ends_with(".lora_b") {
            p.value = Matrix::randn(p.value.rows(), p.value.cols(), &mut rng);
        }
    }
    apollo_nn::LoraAdapter::from_model(&m).expect("LoRA source")
}

/// A front-end with two resident adapters and the prefix cache enabled.
fn start_multi_frontend(sched: SchedConfig) -> Frontend {
    let registry = Arc::new(apollo_nn::AdapterRegistry::resident(vec![
        ("alpha".into(), test_adapter(0xA1)),
        ("beta".into(), test_adapter(0xB2)),
    ]));
    Frontend::start_multi(
        tiny_model(0x11),
        sched,
        test_serve(),
        Obs::disabled(),
        registry,
    )
    .expect("bind loopback")
}

fn get_path(addr: &str, path: &str) -> net::Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    net::write_request(&mut stream, "GET", path, &[], b"").expect("write");
    net::read_response(&mut stream, Duration::from_secs(20)).expect("response")
}

#[test]
fn adapter_routing_is_deterministic_and_rejects_unknown_names() {
    let sched = SchedConfig {
        prefix_cache_bytes: 1 << 20,
        ..test_sched()
    };
    let frontend = start_multi_frontend(sched);
    let addr = frontend.local_addr().to_string();

    // healthz advertises the registered tenants.
    let health = get_path(&addr, "/healthz");
    assert_eq!(health.status, 200);
    let health_body = String::from_utf8_lossy(&health.body).to_string();
    assert!(
        health_body.contains("\"adapters\":[\"alpha\",\"beta\"]"),
        "healthz must list adapters: {health_body}"
    );

    // An unknown adapter name is a 400 naming the tenant, before any
    // scheduler work happens.
    let resp = post_generate(
        &addr,
        "{\"prompt\":[1,2,3],\"max_new_tokens\":2,\"adapter\":\"gamma\"}",
    );
    assert_eq!(resp.status, 400, "unknown adapter must be a client error");
    let err_body = String::from_utf8_lossy(&resp.body).to_string();
    assert!(
        err_body.contains("gamma"),
        "error names the tenant: {err_body}"
    );

    // Same request under each tenant: deterministic per tenant, and the
    // adapters' deltas actually change the sampled tokens.
    let body_for = |adapter: &str| {
        format!(
            "{{\"prompt\":[3,14,15,9,2,6],\"max_new_tokens\":10,\"seed\":5,\"adapter\":{adapter}}}"
        )
    };
    let base = tokens_from(
        &post_generate(
            &addr,
            "{\"prompt\":[3,14,15,9,2,6],\"max_new_tokens\":10,\"seed\":5}",
        )
        .body,
    );
    let alpha = tokens_from(&post_generate(&addr, &body_for("\"alpha\"")).body);
    let alpha2 = tokens_from(&post_generate(&addr, &body_for("\"alpha\"")).body);
    let beta = tokens_from(&post_generate(&addr, &body_for("\"beta\"")).body);
    assert_eq!(alpha, alpha2, "same tenant, same request, same tokens");
    assert_ne!(alpha, base, "alpha's delta must change the output");
    assert_ne!(alpha, beta, "distinct tenants decode distinct tokens");

    wait_in_flight_zero(&frontend, Duration::from_secs(5));
    let report = frontend.shutdown();
    assert_eq!(report.forced, 0);
}

#[test]
fn stats_endpoint_reports_prefix_cache_and_adapters() {
    let sched = SchedConfig {
        max_active: 1, // serialize admissions so the second request hits
        prefix_cache_bytes: 1 << 20,
        ..test_sched()
    };
    let frontend = start_multi_frontend(sched);
    let addr = frontend.local_addr().to_string();

    // Two prefix-sharing requests under one tenant: a miss, then a hit.
    let shared = "{\"prompt\":[7,7,7,7,7,7,7,7,1],\"max_new_tokens\":2,\"adapter\":\"alpha\"}";
    let shared2 = "{\"prompt\":[7,7,7,7,7,7,7,7,2],\"max_new_tokens\":2,\"adapter\":\"alpha\"}";
    assert_eq!(post_generate(&addr, shared).status, 200);
    assert_eq!(post_generate(&addr, shared2).status, 200);
    wait_in_flight_zero(&frontend, Duration::from_secs(5));

    let resp = get_path(&addr, "/stats");
    assert_eq!(resp.status, 200);
    let stats: Value =
        serde_json::from_str(&String::from_utf8_lossy(&resp.body)).expect("stats is JSON");
    let num = |v: &Value, field: &str| -> u64 {
        match v.get_field(field) {
            Ok(Value::Num(n)) => n.as_u64().unwrap_or(0),
            other => panic!("stats field {field} missing or non-numeric: {other:?}"),
        }
    };
    let cache = stats
        .get_field("prefix_cache")
        .expect("prefix_cache object");
    assert!(num(cache, "lookups") >= 2);
    assert!(num(cache, "hits") >= 1, "shared prefix must hit");
    assert!(num(cache, "hit_tokens") >= 8);
    assert!(num(cache, "cached_bytes") > 0);
    let adapters = stats.get_field("adapters").expect("adapters object");
    assert_eq!(num(adapters, "registered"), 2);
    assert_eq!(num(adapters, "resident"), 2);
    assert!(num(&stats, "prefill_tokens") > 0);
    assert!(num(&stats, "decode_tokens") > 0);
    assert_eq!(num(&stats, "in_flight"), 0);

    frontend.shutdown();
}
