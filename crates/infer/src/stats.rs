//! Shared serving statistics for `GET /stats`.
//!
//! A [`ServeStats`] is one `Arc` of atomics written by the scheduler tick
//! (prefix-cache and KV numbers), the adapter registry mirror, and the
//! frontend (in-flight requests), and rendered as JSON by the frontend.
//! Plain relaxed atomics: every field is a monotonic counter or a
//! last-write-wins gauge, and readers only need a consistent-enough
//! snapshot for operational dashboards.

use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot-friendly serving counters and gauges.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Prefix-cache lookups (admissions with the cache enabled).
    pub prefix_lookups: AtomicU64,
    /// Lookups that matched at least one token.
    pub prefix_hits: AtomicU64,
    /// Prompt tokens served from cache instead of prefill.
    pub prefix_hit_tokens: AtomicU64,
    /// Bytes of cached KV block storage (gauge).
    pub prefix_cached_bytes: AtomicU64,
    /// Live radix-tree nodes (gauge).
    pub prefix_nodes: AtomicU64,
    /// Prefix-cache leaf evictions.
    pub prefix_evictions: AtomicU64,
    /// Prompt tokens actually prefilled (cold rows).
    pub prefill_tokens: AtomicU64,
    /// Microseconds spent in prefill forward passes. With
    /// `prefill_tokens` and `prefix_hit_tokens` this yields the
    /// *effective* prefill throughput `(cold + cached) / time`, the
    /// `prefix_hit_prefill_tok_per_sec` bench metric.
    pub prefill_us: AtomicU64,
    /// Decode rows run.
    pub decode_tokens: AtomicU64,
    /// KV bytes in use across scheduler slots (gauge).
    pub kv_used_bytes: AtomicU64,
    /// Adapters known to the registry (gauge).
    pub adapters_registered: AtomicU64,
    /// Adapters currently resident in memory (gauge).
    pub adapters_resident: AtomicU64,
    /// Adapter checkpoint loads (initial and post-eviction).
    pub adapter_loads: AtomicU64,
    /// Adapter residency evictions.
    pub adapter_evictions: AtomicU64,
}

impl ServeStats {
    /// Prefix-cache hit rate over lookups so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.prefix_lookups.load(Ordering::Relaxed);
        if lookups == 0 {
            return 0.0;
        }
        self.prefix_hits.load(Ordering::Relaxed) as f64 / lookups as f64
    }

    /// Stores a gauge value.
    pub(crate) fn set(field: &AtomicU64, value: u64) {
        field.store(value, Ordering::Relaxed);
    }
}
