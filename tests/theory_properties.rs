//! Property-based tests of the paper's theoretical claims (Appendix A) and
//! core numeric invariants, via proptest.

use apollo_repro::optim::{
    Apollo, NormGrowthLimiter, Optimizer, ParamUpdate, ProjKind, Projector, ScaleGranularity,
};
use apollo_repro::quant::QuantizedMatrix;
use apollo_repro::tensor::linalg::svd_jacobi;
use apollo_repro::tensor::{Matrix, Rng};
use proptest::prelude::*;

fn arb_matrix(max_m: usize, max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_m, 1..=max_n, any::<u64>()).prop_map(|(m, n, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        Matrix::randn(m, n, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem A.1 (JL norm preservation): at rank 64 the projected squared
    /// norm is within ±50% of the original with overwhelming probability
    /// (the bound gives exp(-64·0.5²/8) ≈ 0.13 failure per column; we test
    /// the Frobenius aggregate, which concentrates much harder).
    #[test]
    fn random_projection_preserves_frobenius_norm(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let g = Matrix::randn(96, 64, &mut rng);
        let mut p = Projector::new(ProjKind::Random, 64, 10, seed ^ 1);
        p.begin_step(&g);
        let r = p.project(&g);
        let ratio = (r.fro_norm() / g.fro_norm()).powi(2);
        prop_assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    /// Appendix A.1.3, Step 2: projecting the gradient then accumulating
    /// momentum equals accumulating momentum then projecting (linearity:
    /// M_t^R = P · M_t), as long as P is fixed.
    #[test]
    fn momentum_commutes_with_projection(seed in any::<u64>(), beta in 0.5f32..0.99) {
        let mut rng = Rng::seed_from_u64(seed);
        let grads: Vec<Matrix> = (0..5).map(|_| Matrix::randn(8, 12, &mut rng)).collect();
        let mut p = Projector::new(ProjKind::Random, 4, 1000, seed ^ 2);
        p.begin_step(&grads[0]);

        // Momentum in the original space, projected afterwards.
        let mut m_full = Matrix::zeros(8, 12);
        for g in &grads {
            m_full.ema_assign(beta, g);
        }
        let projected_after = p.project(&m_full);

        // Momentum accumulated on projected gradients.
        let mut m_low = Matrix::zeros(4, 12);
        for g in &grads {
            m_low.ema_assign(beta, &p.project(g));
        }
        for (a, b) in projected_after.as_slice().iter().zip(m_low.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// The norm-growth limiter never lets the output norm exceed
    /// γ × previous norm, for any input sequence.
    #[test]
    fn limiter_never_exceeds_gamma_growth(
        seeds in proptest::collection::vec(any::<u64>(), 2..10),
        gamma in 1.001f32..1.5,
    ) {
        let mut limiter = NormGrowthLimiter::new(gamma);
        let mut prev: Option<f32> = None;
        for seed in seeds {
            let mut rng = Rng::seed_from_u64(seed);
            let mut u = Matrix::randn(4, 6, &mut rng).scale(rng.uniform_in(0.0, 100.0));
            limiter.apply(&mut u);
            let norm = u.fro_norm();
            if let Some(p) = prev {
                if p > 0.0 {
                    prop_assert!(norm <= gamma * p * 1.0001, "{norm} > γ·{p}");
                }
            }
            prev = Some(norm);
        }
    }

    /// INT8 group quantization error is bounded by half the per-group scale.
    #[test]
    fn quantization_error_bounded(m in arb_matrix(8, 64), group in 1usize..64) {
        let q = QuantizedMatrix::quantize(&m, group);
        let deq = q.dequantize();
        let bound = q.max_quantization_error() + 1e-6;
        for (a, b) in m.as_slice().iter().zip(deq.as_slice()) {
            prop_assert!((a - b).abs() <= bound);
        }
    }

    /// SVD reconstructs arbitrary matrices to f32 precision.
    #[test]
    fn svd_reconstruction(m in arb_matrix(12, 12)) {
        let f = svd_jacobi(&m);
        let err = f.reconstruct().sub(&m).fro_norm();
        let scale = 1.0 + m.fro_norm();
        prop_assert!(err / scale < 1e-3, "err {err}");
    }

    /// APOLLO's update never contains NaN/Inf for finite gradients, across
    /// granularities, ranks, and α.
    #[test]
    fn apollo_update_is_finite(
        g in arb_matrix(6, 24),
        rank in 1usize..8,
        alpha in 0.1f32..16.0,
        tensor_wise in any::<bool>(),
    ) {
        let gran = if tensor_wise { ScaleGranularity::Tensor } else { ScaleGranularity::Channel };
        let mut opt = Apollo::new(rank, 10).with_alpha(alpha).with_granularity(gran);
        let mut w = Matrix::zeros(g.rows(), g.cols());
        for _ in 0..3 {
            let mut params = [ParamUpdate {
                name: "w",
                value: &mut w,
                grad: &g,
                projectable: true,
            }];
            opt.step(&mut params, 1e-2);
        }
        prop_assert!(w.all_finite());
    }

    /// Tensor-wise scaling factors shrink roughly as √(r/m) with the
    /// projected dimension m (Theorem A.4's trend, loose band).
    #[test]
    fn scaling_factor_trend_with_rank(seed in any::<u64>()) {
        let (m, n) = (64usize, 96usize);
        let mut rng = Rng::seed_from_u64(seed);
        let mut scale_at = |rank: usize| {
            let mut opt = Apollo::new(rank, 1000)
                .with_granularity(ScaleGranularity::Tensor)
                .without_limiter();
            let mut w = Matrix::zeros(m, n);
            let mut s = 0.0;
            for _ in 0..12 {
                let g = Matrix::randn(m, n, &mut rng);
                let mut params = [ParamUpdate {
                    name: "w",
                    value: &mut w,
                    grad: &g,
                    projectable: true,
                }];
                opt.step(&mut params, 1e-5);
                s = opt.last_scales[0][0];
            }
            s
        };
        let s4 = scale_at(4);
        let s64 = scale_at(64);
        let ratio = s4 / s64; // expect ≈ √(4/64) = 0.25
        prop_assert!((0.1..0.7).contains(&ratio), "ratio {ratio}");
    }
}
