//! Training-step phase timing: a per-step sample and cumulative statistics
//! for the end-of-run `--profile` breakdown.

use std::time::Instant;

/// The phases of one optimizer step, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Drawing the next batch from the data loader.
    BatchPrep,
    /// Forward pass: graph build + loss.
    Forward,
    /// Backward pass + gradient collection.
    Backward,
    /// Global gradient-norm clipping.
    Clip,
    /// The optimizer update.
    Optimizer,
    /// Crash-safe checkpoint writes.
    Checkpoint,
    /// Periodic validation evaluation.
    Eval,
}

impl Phase {
    /// Every phase, in execution order.
    pub const ALL: [Phase; 7] = [
        Phase::BatchPrep,
        Phase::Forward,
        Phase::Backward,
        Phase::Clip,
        Phase::Optimizer,
        Phase::Checkpoint,
        Phase::Eval,
    ];

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::BatchPrep => "batch",
            Phase::Forward => "forward",
            Phase::Backward => "backward",
            Phase::Clip => "clip",
            Phase::Optimizer => "optimizer",
            Phase::Checkpoint => "checkpoint",
            Phase::Eval => "eval",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::BatchPrep => 0,
            Phase::Forward => 1,
            Phase::Backward => 2,
            Phase::Clip => 3,
            Phase::Optimizer => 4,
            Phase::Checkpoint => 5,
            Phase::Eval => 6,
        }
    }
}

/// Wall-clock milliseconds per phase for one step. Accumulates, so a phase
/// that runs twice within a step (gradient accumulation) sums both passes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSample {
    ms: [f32; Phase::ALL.len()],
}

impl PhaseSample {
    /// An all-zero sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, charging its wall-clock to `phase`, and returns its value.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.add(phase, t.elapsed().as_secs_f32() * 1e3);
        out
    }

    /// Adds pre-measured milliseconds to a phase.
    pub fn add(&mut self, phase: Phase, ms: f32) {
        self.ms[phase.index()] += ms;
    }

    /// Milliseconds charged to a phase so far.
    pub fn get(&self, phase: Phase) -> f32 {
        self.ms[phase.index()]
    }

    /// Sum over all phases.
    pub fn phase_total(&self) -> f32 {
        self.ms.iter().sum()
    }
}

/// Cumulative per-phase totals across a run.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    totals_ms: [f64; Phase::ALL.len()],
    total_step_ms: f64,
    steps: usize,
}

impl PhaseStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one step's sample (and its whole-step time) into the totals.
    pub fn record(&mut self, sample: &PhaseSample, step_total_ms: f32) {
        for p in Phase::ALL {
            self.totals_ms[p.index()] += f64::from(sample.get(p));
        }
        self.total_step_ms += f64::from(step_total_ms);
        self.steps += 1;
    }

    /// Steps recorded.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Cumulative milliseconds charged to a phase.
    pub fn total_ms(&self, phase: Phase) -> f64 {
        self.totals_ms[phase.index()]
    }

    /// Cumulative whole-step milliseconds.
    pub fn total_step_ms(&self) -> f64 {
        self.total_step_ms
    }

    /// Renders the `--profile` breakdown: one line per phase with total,
    /// mean, and share of the summed step time, plus an "other" line for
    /// loop bookkeeping not attributed to any phase.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>10} {:>10} {:>7}\n",
            "phase", "total ms", "mean ms", "share"
        ));
        let denom = if self.total_step_ms > 0.0 {
            self.total_step_ms
        } else {
            1.0
        };
        let steps = self.steps.max(1) as f64;
        let mut attributed = 0.0;
        for p in Phase::ALL {
            let t = self.totals_ms[p.index()];
            attributed += t;
            out.push_str(&format!(
                "{:<12} {:>10.1} {:>10.2} {:>6.1}%\n",
                p.label(),
                t,
                t / steps,
                100.0 * t / denom
            ));
        }
        let other = (self.total_step_ms - attributed).max(0.0);
        out.push_str(&format!(
            "{:<12} {:>10.1} {:>10.2} {:>6.1}%\n",
            "other",
            other,
            other / steps,
            100.0 * other / denom
        ));
        out.push_str(&format!(
            "{:<12} {:>10.1} {:>10.2} {:>6.1}%",
            "total step",
            self.total_step_ms,
            self.total_step_ms / steps,
            100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_charges_the_right_phase() {
        let mut s = PhaseSample::new();
        let v = s.time(Phase::Forward, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(s.get(Phase::Forward) >= 1.0);
        assert_eq!(s.get(Phase::Backward), 0.0);
        assert_eq!(s.phase_total(), s.get(Phase::Forward));
    }

    #[test]
    fn phases_accumulate_within_a_step() {
        let mut s = PhaseSample::new();
        s.add(Phase::Forward, 2.0);
        s.add(Phase::Forward, 3.0);
        assert_eq!(s.get(Phase::Forward), 5.0);
    }

    #[test]
    fn stats_fold_samples() {
        let mut stats = PhaseStats::new();
        let mut s = PhaseSample::new();
        s.add(Phase::Forward, 4.0);
        s.add(Phase::Optimizer, 1.0);
        stats.record(&s, 6.0);
        stats.record(&s, 6.0);
        assert_eq!(stats.steps(), 2);
        assert_eq!(stats.total_ms(Phase::Forward), 8.0);
        assert_eq!(stats.total_step_ms(), 12.0);
    }

    #[test]
    fn render_table_mentions_every_phase() {
        let mut stats = PhaseStats::new();
        let mut s = PhaseSample::new();
        s.add(Phase::Backward, 10.0);
        stats.record(&s, 12.0);
        let table = stats.render_table();
        for p in Phase::ALL {
            assert!(table.contains(p.label()), "missing {}", p.label());
        }
        assert!(table.contains("other"));
        assert!(table.contains("total step"));
    }
}
