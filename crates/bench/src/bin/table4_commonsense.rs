//! Table 4: fine-tuning on the eight commonsense-reasoning stand-in tasks.
//!
//! A single dense base model is pre-trained once, then fine-tuned per
//! (task, method). Full fine-tuning (AdamW), LoRA, and the low-rank
//! optimizer family all run on the same base; accuracy is reported per
//! task plus the average.

use apollo_bench::{print_table, scaled, write_json, Method, UPDATE_FREQ};
use apollo_data::{commonsense_suite, CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_optim::{AdamW, Apollo, Fira, GaLore, Optimizer};
use apollo_tensor::Rng;
use apollo_train::{finetune, pretrain, FinetuneConfig, TrainConfig};
use serde::Serialize;

#[derive(Serialize)]
struct MethodRow {
    method: String,
    accuracies: Vec<(String, f32)>,
    average: f32,
}

/// Fine-tuning ranks at proxy scale: the paper's rank 32 on hidden ≥ 2048
/// maps to 8 on hidden 64.
const FT_RANK: usize = 8;

fn build_optimizer(name: &str, mini_alpha: f32) -> Box<dyn Optimizer> {
    match name {
        "AdamW" | "LoRA" => Box::new(AdamW::new()),
        "GaLore" => Box::new(GaLore::new(FT_RANK, UPDATE_FREQ)),
        "Fira" => Box::new(Fira::new(FT_RANK, UPDATE_FREQ)),
        "APOLLO w. SVD" => Box::new(Apollo::new(FT_RANK, UPDATE_FREQ).with_svd()),
        "APOLLO" => Box::new(Apollo::new(FT_RANK, UPDATE_FREQ).with_alpha(5f32.sqrt())),
        "APOLLO-Mini" => Box::new(Apollo::mini(UPDATE_FREQ).with_alpha(mini_alpha)),
        other => panic!("unknown method {other}"),
    }
}

fn main() {
    let cfg = ModelConfig::tiny_60m();
    let base_steps = scaled(300);
    let ft_steps = scaled(50);
    let mini_alpha = Method::mini_alpha(&cfg);

    eprintln!("[table4] pre-training the base model ({base_steps} steps) ...");
    let mut rng = Rng::seed_from_u64(42);
    let mut base = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    let mut pre_opt = AdamW::new();
    let tc = TrainConfig {
        lr: 3e-3,
        grad_clip: Some(1.0),
        ..TrainConfig::quick(base_steps)
    };
    let base_log = pretrain(&mut base, &mut pre_opt, &mut batcher, &tc);
    eprintln!("[table4] base ppl {:.2}", base_log.final_ppl);

    let methods = [
        "AdamW",
        "LoRA",
        "GaLore",
        "Fira",
        "APOLLO w. SVD",
        "APOLLO",
        "APOLLO-Mini",
    ];
    let mut results = Vec::new();
    for &name in &methods {
        let mut accs = Vec::new();
        for task in commonsense_suite(cfg.vocab_size, cfg.max_seq).iter_mut() {
            eprintln!("[table4] {name} on {} ...", task.config().name);
            let mut model = if name == "LoRA" {
                let mut rng = Rng::seed_from_u64(7);
                base.to_lora(FT_RANK, 2.0 * FT_RANK as f32, &mut rng)
            } else {
                base.clone()
            };
            let mut opt = build_optimizer(name, mini_alpha);
            let fc = FinetuneConfig {
                steps: ft_steps,
                batch: 8,
                lr: if name == "AdamW" { 1e-3 } else { 3e-3 },
                eval_examples: 100,
            };
            let res = finetune(&mut model, opt.as_mut(), task, &fc);
            accs.push((task.config().name.clone(), res.accuracy));
        }
        let average = accs.iter().map(|&(_, a)| a).sum::<f32>() / accs.len() as f32;
        results.push(MethodRow {
            method: name.to_string(),
            accuracies: accs,
            average,
        });
    }

    let mut headers: Vec<String> = vec!["Method".into()];
    headers.extend(results[0].accuracies.iter().map(|(t, _)| t.clone()));
    headers.push("Average".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.method.clone()];
            row.extend(r.accuracies.iter().map(|&(_, a)| format!("{a:.1}")));
            row.push(format!("{:.2}", r.average));
            row
        })
        .collect();
    print_table(
        &format!("Table 4 — commonsense fine-tuning accuracy (%), {ft_steps} steps/task"),
        &header_refs,
        &rows,
    );
    println!(
        "\nPaper shape: APOLLO family ≈ full AdamW average (within ~1 pt), clearly above \
         GaLore; LoRA trails. (DoRA omitted — see DESIGN.md.)"
    );
    write_json("table4_commonsense", &results);
}
