//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `src/bin/<id>.rs` binary reproduces one artifact (see DESIGN.md's
//! experiment index) by delegating to this library: a [`Method`] registry
//! mapping the paper's method names to configured optimizers and model
//! parameterizations, a [`pretrain_run`] driver, and plain-text/JSON output
//! helpers.
//!
//! All runs are deterministic given their seeds. Step budgets scale with
//! the `APOLLO_SCALE` environment variable (default 1.0) so the full suite
//! can be traded between fidelity and wall-clock.

pub mod perf;

use std::path::PathBuf;

use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_obs::Obs;
use apollo_optim::{
    AdamW, AdamWChannelwise, Apollo, Fira, Flora, GaLore, Optimizer, ScaleGranularity, Sgd,
    SgdMomentum,
};
use apollo_tensor::Rng;
use apollo_train::{pretrain, pretrain_observed, ResilienceConfig, RunLog, TrainConfig};

/// The paper's subspace refresh period T.
pub const UPDATE_FREQ: usize = 200;

/// A training method from the paper's evaluation, with everything needed to
/// instantiate it for a given model geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Full-rank AdamW baseline.
    AdamW,
    /// AdamW with the Section-3 channel-wise structured LR rule.
    AdamWChannelwise {
        /// Whether the norm-growth limiter is active (Fig. 3 ablation).
        limiter: bool,
    },
    /// AdamW with element-wise rule — alias of [`Method::AdamW`], named for
    /// Fig. 3's legend.
    AdamWElementwise,
    /// 8-bit Adam (INT8 moments, group 128).
    Adam8bit,
    /// Plain SGD.
    Sgd,
    /// SGD with momentum 0.9.
    SgdMomentum,
    /// `W = UV` factored baseline ("Low-Rank" in Table 2).
    LowRank,
    /// LoRA adapters on a frozen random backbone (pre-training baseline).
    LoRa,
    /// ReLoRA: LoRA with periodic merges.
    ReLoRa,
    /// GaLore (SVD projection).
    GaLore,
    /// GaLore with pure random projection (Fig. 5 ablation).
    GaLoreRp,
    /// 8-bit GaLore.
    GaLore8bit,
    /// Fira (SVD projection).
    Fira,
    /// Flora (random-projection momentum compression).
    Flora,
    /// APOLLO (random projection, channel-wise).
    Apollo,
    /// APOLLO with half the default rank (the `†` rows of Table 2).
    ApolloHalfRank,
    /// APOLLO w. SVD.
    ApolloSvd,
    /// APOLLO with tensor-wise scaling at full rank (Table 7 ablation).
    ApolloTensor,
    /// APOLLO w. SVD with tensor-wise scaling (Table 7 ablation).
    ApolloTensorSvd,
    /// APOLLO-Mini (rank 1, tensor-wise, random projection).
    ApolloMini,
    /// APOLLO-Mini with SVD projection (Fig. 5 ablation).
    ApolloMiniSvd,
}

impl Method {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::AdamW => "AdamW",
            Method::AdamWChannelwise { limiter: true } => "Channel-wise LR + NL",
            Method::AdamWChannelwise { limiter: false } => "Channel-wise LR",
            Method::AdamWElementwise => "Element-wise LR (AdamW)",
            Method::Adam8bit => "8-bit Adam",
            Method::Sgd => "SGD",
            Method::SgdMomentum => "SGD-M",
            Method::LowRank => "Low-Rank",
            Method::LoRa => "LoRA",
            Method::ReLoRa => "ReLoRA",
            Method::GaLore => "GaLore",
            Method::GaLoreRp => "GaLore w. RP",
            Method::GaLore8bit => "8-bit GaLore",
            Method::Fira => "Fira",
            Method::Flora => "Flora",
            Method::Apollo => "APOLLO",
            Method::ApolloHalfRank => "APOLLO (r/2)",
            Method::ApolloSvd => "APOLLO w. SVD",
            Method::ApolloTensor => "APOLLO (tensor)",
            Method::ApolloTensorSvd => "APOLLO w. SVD (tensor)",
            Method::ApolloMini => "APOLLO-Mini",
            Method::ApolloMiniSvd => "APOLLO-Mini w. SVD",
        }
    }

    /// The default rank for this method under a geometry: one quarter of
    /// the hidden dim (halved for the `†` variant, 1 for Mini).
    pub fn rank(&self, cfg: &ModelConfig) -> usize {
        match self {
            Method::ApolloHalfRank => (cfg.hidden / 8).max(1),
            Method::ApolloMini | Method::ApolloMiniSvd => 1,
            _ => cfg.default_rank(),
        }
    }

    /// APOLLO-Mini's gradient scale factor α = √(hidden/4): the paper's
    /// constant √128 *is* √(512/4) for its smallest (60M, hidden 512)
    /// geometry, so the proxy models keep that ratio.
    pub fn mini_alpha(cfg: &ModelConfig) -> f32 {
        (cfg.hidden as f32 / 4.0).sqrt()
    }

    /// How the model's linear layers are parameterized under this method.
    pub fn linear_mode(&self, cfg: &ModelConfig) -> LinearMode {
        let rank = self.rank(cfg);
        match self {
            Method::LowRank => LinearMode::Factored { rank },
            Method::LoRa | Method::ReLoRa => LinearMode::LoRa {
                rank,
                alpha: 2.0 * rank as f32,
            },
            _ => LinearMode::Dense,
        }
    }

    /// Instantiates the optimizer for a geometry.
    pub fn build(&self, cfg: &ModelConfig) -> Box<dyn Optimizer> {
        let rank = self.rank(cfg);
        match self {
            Method::AdamW
            | Method::AdamWElementwise
            | Method::LowRank
            | Method::LoRa
            | Method::ReLoRa => Box::new(AdamW::new()),
            Method::AdamWChannelwise { limiter } => Box::new(if *limiter {
                AdamWChannelwise::new()
            } else {
                AdamWChannelwise::new().without_limiter()
            }),
            Method::Adam8bit => Box::new(AdamW::adam8bit(128)),
            Method::Sgd => Box::new(Sgd::new()),
            Method::SgdMomentum => Box::new(SgdMomentum::new(0.9)),
            Method::GaLore => Box::new(GaLore::new(rank, UPDATE_FREQ)),
            Method::GaLoreRp => Box::new(GaLore::new(rank, UPDATE_FREQ).with_random_projection()),
            Method::GaLore8bit => Box::new(GaLore::galore8bit(rank, UPDATE_FREQ, 128)),
            Method::Fira => Box::new(Fira::new(rank, UPDATE_FREQ)),
            Method::Flora => Box::new(Flora::new(rank, UPDATE_FREQ)),
            Method::Apollo | Method::ApolloHalfRank => Box::new(Apollo::new(rank, UPDATE_FREQ)),
            Method::ApolloSvd => Box::new(Apollo::new(rank, UPDATE_FREQ).with_svd()),
            Method::ApolloTensor => {
                Box::new(Apollo::new(rank, UPDATE_FREQ).with_granularity(ScaleGranularity::Tensor))
            }
            Method::ApolloTensorSvd => Box::new(
                Apollo::new(rank, UPDATE_FREQ)
                    .with_svd()
                    .with_granularity(ScaleGranularity::Tensor),
            ),
            Method::ApolloMini => {
                Box::new(Apollo::mini(UPDATE_FREQ).with_alpha(Self::mini_alpha(cfg)))
            }
            Method::ApolloMiniSvd => Box::new(
                Apollo::mini(UPDATE_FREQ)
                    .with_alpha(Self::mini_alpha(cfg))
                    .with_svd(),
            ),
        }
    }

    /// The method's pre-training peak LR at proxy scale, calibrated with a
    /// small sweep at the 60M proxy (see EXPERIMENTS.md): 1e-2 for the
    /// AdamW family (with clipping), 3e-2 for the scaled-update family
    /// (which the norm-growth limiter stabilizes — the analogue of the
    /// paper's 1e-2-at-512-hidden recipe).
    pub fn default_lr(&self) -> f32 {
        match self {
            Method::AdamW
            | Method::AdamWElementwise
            | Method::AdamWChannelwise { .. }
            | Method::Adam8bit
            | Method::LowRank
            | Method::LoRa
            | Method::ReLoRa => 1e-2,
            Method::SgdMomentum | Method::Sgd => 0.3,
            _ => 3e-2,
        }
    }

    /// Whether the baseline uses global gradient clipping (the AdamW family
    /// does; APOLLO-family methods rely on the norm-growth limiter).
    pub fn grad_clip(&self) -> Option<f32> {
        match self {
            Method::AdamW
            | Method::AdamWElementwise
            | Method::Adam8bit
            | Method::LowRank
            | Method::LoRa
            | Method::ReLoRa
            | Method::Sgd
            | Method::SgdMomentum => Some(1.0),
            _ => None,
        }
    }

    /// ReLoRA's merge period.
    pub fn merge_every(&self, steps: usize) -> Option<usize> {
        match self {
            Method::ReLoRa => Some((steps / 4).max(1)),
            _ => None,
        }
    }
}

/// Global step-budget multiplier from `APOLLO_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("APOLLO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Applies the global scale to a step budget (minimum 20 steps).
pub fn scaled(steps: usize) -> usize {
    ((steps as f64 * scale()) as usize).max(20)
}

/// Where experiment outputs are written (`results/` under the workspace).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("APOLLO_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Writes a JSON result file under [`results_dir`].
pub fn write_json(name: &str, value: &impl serde::Serialize) {
    let path = results_dir().join(format!("{name}.json"));
    let data = serde_json::to_string_pretty(value).expect("serialize");
    std::fs::write(&path, data).expect("write result");
    eprintln!("[saved {}]", path.display());
}

/// Prints a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n== {title} ==");
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// One pre-training run of `method` on `cfg`'s proxy geometry.
///
/// Deterministic given `seed`; the corpus is shared across methods so every
/// optimizer sees the same data stream.
pub fn pretrain_run(
    cfg: &ModelConfig,
    method: Method,
    steps: usize,
    batch: usize,
    seed: u64,
    train_overrides: Option<TrainConfig>,
) -> RunLog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut model = LlamaModel::new(cfg, method.linear_mode(cfg), &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, batch, cfg.max_seq);
    let mut opt = method.build(cfg);
    let tc = train_overrides.unwrap_or(TrainConfig {
        steps,
        lr: method.default_lr(),
        grad_clip: method.grad_clip(),
        eval_every: 0,
        eval_seqs: 32,
        merge_every: method.merge_every(steps),
        record_step_times: false,
        grad_accum: 1,
        quantize_weights: None,
    });
    let mut log = pretrain(&mut model, opt.as_mut(), &mut batcher, &tc);
    log.optimizer = method.label().to_string();
    log
}

/// Like [`pretrain_run`], but threads an [`Obs`] handle through the loop so
/// figure probes can read phase timings, channel-scale summaries, projector
/// refreshes, and limiter clips from the JSONL trace afterwards.
pub fn pretrain_run_observed(
    cfg: &ModelConfig,
    method: Method,
    steps: usize,
    batch: usize,
    seed: u64,
    train_overrides: Option<TrainConfig>,
    obs: &Obs,
) -> RunLog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut model = LlamaModel::new(cfg, method.linear_mode(cfg), &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, batch, cfg.max_seq);
    let mut opt = method.build(cfg);
    let tc = train_overrides.unwrap_or(TrainConfig {
        steps,
        lr: method.default_lr(),
        grad_clip: method.grad_clip(),
        eval_every: 0,
        eval_seqs: 32,
        merge_every: method.merge_every(steps),
        record_step_times: false,
        grad_accum: 1,
        quantize_weights: None,
    });
    let res = ResilienceConfig::default();
    let mut log = pretrain_observed(&mut model, opt.as_mut(), &mut batcher, &tc, &res, obs);
    log.optimizer = method.label().to_string();
    log
}

/// The proxy geometry standing in for each paper model size.
pub fn proxy_for(paper_size: &str) -> ModelConfig {
    match paper_size {
        "60M" => ModelConfig::tiny_60m(),
        "130M" => ModelConfig::tiny_130m(),
        "350M" => ModelConfig::tiny_350m(),
        "1B" => ModelConfig::tiny_1b(),
        "7B" => ModelConfig::tiny_7b(),
        other => panic!("unknown paper size {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let all = [
            Method::AdamW,
            Method::Adam8bit,
            Method::Sgd,
            Method::SgdMomentum,
            Method::LowRank,
            Method::LoRa,
            Method::ReLoRa,
            Method::GaLore,
            Method::GaLoreRp,
            Method::GaLore8bit,
            Method::Fira,
            Method::Flora,
            Method::Apollo,
            Method::ApolloHalfRank,
            Method::ApolloSvd,
            Method::ApolloTensor,
            Method::ApolloMini,
            Method::ApolloMiniSvd,
        ];
        let mut labels: Vec<&str> = all.iter().map(Method::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn mini_alpha_matches_paper_constant_at_512_hidden() {
        let alpha = Method::mini_alpha(&ModelConfig::llama_60m());
        assert!((alpha - 128f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn ranks_follow_quarter_hidden_rule() {
        let cfg = ModelConfig::tiny_60m(); // hidden 64
        assert_eq!(Method::Apollo.rank(&cfg), 16);
        assert_eq!(Method::ApolloHalfRank.rank(&cfg), 8);
        assert_eq!(Method::ApolloMini.rank(&cfg), 1);
    }

    #[test]
    fn quick_pretrain_run_smoke() {
        let cfg = ModelConfig::test_tiny();
        let log = pretrain_run(&cfg, Method::Apollo, 20, 2, 7, None);
        assert!(log.final_ppl.is_finite());
        assert_eq!(log.optimizer, "APOLLO");
    }
}
