//! Fig. 6: APOLLO vs Fira training dynamics on the 350M proxy — Fira leads
//! early, APOLLO catches up and passes late.

use apollo_bench::{pretrain_run, print_table, scaled, write_json, Method};
use apollo_nn::ModelConfig;
use apollo_train::TrainConfig;

fn main() {
    let cfg = ModelConfig::tiny_350m();
    let steps = scaled(300);
    let eval_every = (steps / 8).max(1);
    let methods = [Method::Fira, Method::Apollo, Method::AdamW];
    let mut logs = Vec::new();
    for m in methods {
        eprintln!("[fig6] {} ...", m.label());
        let tc = TrainConfig {
            steps,
            lr: m.default_lr(),
            grad_clip: m.grad_clip(),
            eval_every,
            eval_seqs: 32,
            merge_every: None,
            record_step_times: false,
            grad_accum: 1,
            quantize_weights: None,
        };
        logs.push(pretrain_run(&cfg, m, steps, 4, 42, Some(tc)));
    }
    // One column per checkpoint.
    let checkpoints: Vec<usize> = logs[0].eval_ppls.iter().map(|&(s, _)| s).collect();
    let mut headers: Vec<String> = vec!["Method".to_string()];
    headers.extend(checkpoints.iter().map(|s| format!("@{s}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = logs
        .iter()
        .map(|l| {
            let mut row = vec![l.optimizer.clone()];
            row.extend(l.eval_ppls.iter().map(|&(_, p)| format!("{p:.2}")));
            row
        })
        .collect();
    print_table(
        &format!(
            "Fig. 6 — validation ppl over training ({}, {} steps)",
            cfg.name, steps
        ),
        &header_refs,
        &rows,
    );
    println!(
        "\nPaper shape: Fira converges faster early; APOLLO closes the gap with more tokens \
         and both beat AdamW."
    );
    write_json("fig6_curves", &logs);
}
