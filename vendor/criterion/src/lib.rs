//! Offline shim for `criterion`: a minimal wall-clock benchmark harness.
//!
//! No statistics, plots, or saved baselines — each `bench_function` warms
//! up briefly, then times batches until the configured measurement window
//! elapses and prints mean ns/iter. The API mirrors the subset the
//! workspace's benches use (`benchmark_group`, `bench_function`,
//! `criterion_group!`/`criterion_main!`, `black_box`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state and sampling profile.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A named set of benchmarks sharing the parent profile.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(
            name,
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm up and estimate per-iteration cost with growing batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up {
        f(&mut b);
        if b.elapsed < Duration::from_millis(1) {
            b.iters = b.iters.saturating_mul(2);
        }
    }
    let per_iter = (b.elapsed.as_nanos().max(1) / b.iters as u128).max(1);

    // Size batches so `sample_size` samples roughly fill the window.
    let budget_per_sample = measurement.as_nanos() / sample_size.max(1) as u128;
    b.iters = ((budget_per_sample / per_iter).clamp(1, u64::MAX as u128)) as u64;

    let mut total_ns: u128 = 0;
    let mut total_iters: u64 = 0;
    let run_start = Instant::now();
    for _ in 0..sample_size {
        f(&mut b);
        total_ns += b.elapsed.as_nanos();
        total_iters += b.iters;
        if run_start.elapsed() > measurement.saturating_mul(2) {
            break; // routine much slower than estimated; stop early
        }
    }
    let mean = total_ns / total_iters.max(1) as u128;
    println!("  {name}: {mean} ns/iter ({total_iters} iters)");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn group_runs_benches() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("add", |b| {
            ran = true;
            b.iter(|| black_box(1u64) + black_box(2u64))
        });
        group.finish();
        assert!(ran);
    }

    criterion_group! {
        name = benches;
        config = quick();
        targets = noop
    }

    fn noop(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 0u8));
    }

    #[test]
    fn macro_group_compiles_and_runs() {
        benches();
    }
}
