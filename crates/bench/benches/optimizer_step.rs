//! Criterion micro-benchmark: per-step cost of each optimizer on one
//! representative weight tensor. Shows APOLLO's step is GaLore-class cheap
//! on non-refresh steps while AdamW pays full-state element-wise work.

use apollo_optim::{AdamW, Apollo, Fira, GaLore, Optimizer, ParamUpdate, Sgd};
use apollo_tensor::{Matrix, Rng};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_optimizers(c: &mut Criterion) {
    let (m, n, r) = (128, 512, 32);
    let mut rng = Rng::seed_from_u64(1);
    let grad = Matrix::randn(m, n, &mut rng);
    let mut group = c.benchmark_group("optimizer_step_128x512");
    let mut run = |name: &str, mut opt: Box<dyn Optimizer>| {
        let mut w = Matrix::zeros(m, n);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut params = [ParamUpdate {
                    name: "w",
                    value: &mut w,
                    grad: &grad,
                    projectable: true,
                }];
                opt.step(&mut params, 1e-3);
            })
        });
    };
    run("sgd", Box::new(Sgd::new()));
    run("adamw", Box::new(AdamW::new()));
    run("adamw_8bit", Box::new(AdamW::adam8bit(128)));
    run("apollo", Box::new(Apollo::new(r, 200)));
    run("apollo_mini", Box::new(Apollo::mini(200)));
    // Refresh every step: the worst case GaLore pays for SVD.
    run("galore_svd_every_step", Box::new(GaLore::new(r, 1)));
    run("galore_amortized", Box::new(GaLore::new(r, 200)));
    run("fira_amortized", Box::new(Fira::new(r, 200)));
    group.finish();
}

/// Short sampling profile: the reproduction sandbox has a single CPU
/// core, so favour wall-clock over statistical depth.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_optimizers
}
criterion_main!(benches);
