//! Fig. 5 (a–c): SVD vs random projection per method and model size —
//! GaLore degrades badly under random projection while APOLLO and
//! APOLLO-Mini are robust. (d): rank sweep on the 60M proxy — GaLore needs
//! n/4, APOLLO tolerates much lower ranks, APOLLO-Mini works at rank 1.

use apollo_bench::{pretrain_run, print_table, scaled, write_json, Method, UPDATE_FREQ};
use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_optim::{Apollo, Fira, GaLore, Optimizer};
use apollo_tensor::Rng;
use apollo_train::{pretrain, TrainConfig};
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    method: String,
    rank: usize,
    ppl: f32,
}

fn rank_run(cfg: &ModelConfig, opt: &mut dyn Optimizer, steps: usize, lr: f32) -> f32 {
    let mut rng = Rng::seed_from_u64(42);
    let mut model = LlamaModel::new(cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    let tc = TrainConfig {
        lr,
        ..TrainConfig::quick(steps)
    };
    pretrain(&mut model, opt, &mut batcher, &tc).final_ppl
}

fn main() {
    // Part (a-c): projection-kind ablation per size.
    let sizes = [
        ("60M", scaled(300)),
        ("130M", scaled(150)),
        ("350M", scaled(80)),
    ];
    let methods = [
        Method::AdamW,
        Method::GaLore,
        Method::GaLoreRp,
        Method::ApolloSvd,
        Method::Apollo,
        Method::ApolloMiniSvd,
        Method::ApolloMini,
    ];
    let mut rows = Vec::new();
    let mut json: Vec<SweepPoint> = Vec::new();
    for (size, steps) in sizes {
        let cfg = apollo_bench::proxy_for(size);
        let mut row = vec![size.to_string()];
        for m in methods {
            eprintln!("[fig5 a-c] {size} {} ...", m.label());
            let log = pretrain_run(&cfg, m, steps, 4, 42, None);
            row.push(format!("{:.2}", log.final_ppl));
            json.push(SweepPoint {
                method: m.label().to_string(),
                rank: m.rank(&cfg),
                ppl: log.final_ppl,
            });
        }
        rows.push(row);
    }
    let mut headers = vec!["Size"];
    headers.extend(methods.iter().map(|m| m.label()));
    print_table(
        "Fig. 5 (a-c) — SVD vs random projection (val ppl)",
        &headers,
        &rows,
    );

    // Part (d): rank sweep at 60M (hidden 64, so n/4 = 16).
    let cfg = ModelConfig::tiny_60m();
    let steps = scaled(300);
    let ranks = [1usize, 2, 4, 8, 16];
    let mut drows = Vec::new();
    for &rank in &ranks {
        eprintln!("[fig5 d] rank {rank} ...");
        let galore = rank_run(&cfg, &mut GaLore::new(rank, UPDATE_FREQ), steps, 1e-2);
        let fira = rank_run(&cfg, &mut Fira::new(rank, UPDATE_FREQ), steps, 1e-2);
        let apollo = rank_run(&cfg, &mut Apollo::new(rank, UPDATE_FREQ), steps, 1e-2);
        let mini = rank_run(
            &cfg,
            &mut Apollo::mini(UPDATE_FREQ)
                .with_alpha(Method::mini_alpha(&cfg))
                .with_rank(rank),
            steps,
            1e-2,
        );
        for (name, ppl) in [
            ("GaLore", galore),
            ("Fira", fira),
            ("APOLLO", apollo),
            ("APOLLO-Mini", mini),
        ] {
            json.push(SweepPoint {
                method: format!("{name} (rank sweep)"),
                rank,
                ppl,
            });
        }
        drows.push(vec![
            format!("{rank}"),
            format!("{galore:.2}"),
            format!("{fira:.2}"),
            format!("{apollo:.2}"),
            format!("{mini:.2}"),
        ]);
    }
    let adamw_ref = pretrain_run(&cfg, Method::AdamW, steps, 4, 42, None).final_ppl;
    print_table(
        &format!(
            "Fig. 5 (d) — rank sweep on {} (AdamW reference: {adamw_ref:.2})",
            cfg.name
        ),
        &["Rank", "GaLore", "Fira", "APOLLO", "APOLLO-Mini (tensor)"],
        &drows,
    );
    println!(
        "\nPaper shape: GaLore w. RP fails; APOLLO family robust to RP. GaLore needs rank n/4; \
         APOLLO degrades gently; tensor-wise scaling works even at rank 1."
    );
    write_json("fig5_projection_rank", &json);
}
