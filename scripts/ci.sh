#!/usr/bin/env bash
# Full offline CI gate: formatting, lints, build, and every test in the
# workspace (including the vendored dependency shims).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (tier-1: root package)"
cargo test -q

echo "== cargo test --workspace"
cargo test -q --workspace

echo "CI green."
