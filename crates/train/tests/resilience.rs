//! Fault-injection integration tests: crash + bit-exact resume, recovery
//! policies under injected NaN/Inf gradients and loss spikes, checkpoint
//! corruption fallback, and per-optimizer state round-trips.

use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_optim::{
    AdamMini, AdamW, AdamWChannelwise, Apollo, Fira, Flora, GaLore, Optimizer, ParamUpdate,
    ScaleGranularity, Sgd, SgdMomentum,
};
use apollo_tensor::{Matrix, Rng};
use apollo_train::resilience::{flip_bit, truncate_file};
use apollo_train::{
    checkpoint_file_name, latest_valid_checkpoint, pretrain_resilient, FaultKind, FaultPlan,
    RecoveryPolicy, ResilienceConfig, TrainConfig,
};

fn setup(seed: u64) -> (LlamaModel, LmBatcher) {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(seed);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let batcher = LmBatcher::new(corpus, 2, cfg.max_seq);
    (model, batcher)
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("apollo-resilience-it").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_params_bit_equal(a: &LlamaModel, b: &LlamaModel) {
    for (pa, pb) in a.params.iter().zip(&b.params) {
        assert_eq!(pa.name, pb.name);
        let (xa, xb) = (pa.value.as_slice(), pb.value.as_slice());
        assert_eq!(xa.len(), xb.len(), "{}", pa.name);
        for (i, (x, y)) in xa
            .iter()
            .zip(xb)
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "param {} diverges at element {i}: {x} vs {y}",
                pa.name
            );
        }
    }
}

#[test]
fn crash_then_resume_is_bit_exact() {
    let steps = 20;
    let cfg = TrainConfig::quick(steps);

    // Reference: one uninterrupted run.
    let (mut ref_model, mut ref_batcher) = setup(500);
    let mut ref_opt = Apollo::new(4, 10);
    let ref_log = pretrain_resilient(
        &mut ref_model,
        &mut ref_opt,
        &mut ref_batcher,
        &cfg,
        &ResilienceConfig::default(),
    );

    // Crashed run: checkpoints every 5 steps, killed at step 13.
    let dir = fresh_dir("crash-resume");
    let (mut model, mut batcher) = setup(500);
    let mut opt = Apollo::new(4, 10);
    let res = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 5,
        fault_plan: FaultPlan::new().inject(13, FaultKind::Crash),
        ..ResilienceConfig::default()
    };
    let crashed = pretrain_resilient(&mut model, &mut opt, &mut batcher, &cfg, &res);
    assert!(crashed.resilience.crashed);
    assert!(crashed.final_ppl.is_nan(), "a crash skips the final eval");
    assert!(dir.join(checkpoint_file_name(10)).exists());

    // Resume in a fresh process image: new model/optimizer/batcher.
    let (mut model2, mut batcher2) = setup(500);
    let mut opt2 = Apollo::new(4, 10);
    let res2 = ResilienceConfig {
        checkpoint_dir: Some(dir),
        checkpoint_every: 5,
        resume: true,
        ..ResilienceConfig::default()
    };
    let resumed = pretrain_resilient(&mut model2, &mut opt2, &mut batcher2, &cfg, &res2);
    assert_eq!(resumed.resilience.resumed_from_step, Some(10));

    assert_params_bit_equal(&ref_model, &model2);
    assert_eq!(ref_log.final_ppl.to_bits(), resumed.final_ppl.to_bits());
}

#[test]
fn resume_falls_back_past_corrupt_and_truncated_checkpoints() {
    let steps = 20;
    let cfg = TrainConfig::quick(steps);
    let dir = fresh_dir("corrupt-fallback");

    let (mut ref_model, mut ref_batcher) = setup(501);
    let mut ref_opt = AdamW::new();
    pretrain_resilient(
        &mut ref_model,
        &mut ref_opt,
        &mut ref_batcher,
        &cfg,
        &ResilienceConfig::default(),
    );

    let (mut model, mut batcher) = setup(501);
    let mut opt = AdamW::new();
    let res = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 5,
        keep_last: 10,
        fault_plan: FaultPlan::new().inject(17, FaultKind::Crash),
        ..ResilienceConfig::default()
    };
    pretrain_resilient(&mut model, &mut opt, &mut batcher, &cfg, &res);

    // Damage the two newest checkpoints: the scanner must fall back to
    // step 5 and the run must still finish bit-identically.
    let len15 = std::fs::metadata(dir.join(checkpoint_file_name(15)))
        .unwrap()
        .len();
    truncate_file(&dir.join(checkpoint_file_name(15)), len15 / 2).unwrap();
    flip_bit(&dir.join(checkpoint_file_name(10)), 2000, 4).unwrap();
    let (path, state) = latest_valid_checkpoint(&dir).unwrap().unwrap();
    assert_eq!(path, dir.join(checkpoint_file_name(5)));
    assert_eq!(state.meta.step, 5);

    let (mut model2, mut batcher2) = setup(501);
    let mut opt2 = AdamW::new();
    let res2 = ResilienceConfig {
        checkpoint_dir: Some(dir),
        checkpoint_every: 5,
        keep_last: 10,
        resume: true,
        ..ResilienceConfig::default()
    };
    let resumed = pretrain_resilient(&mut model2, &mut opt2, &mut batcher2, &cfg, &res2);
    assert_eq!(resumed.resilience.resumed_from_step, Some(5));
    assert_params_bit_equal(&ref_model, &model2);
}

#[test]
fn skip_step_policy_survives_nan_and_inf_gradients() {
    let cfg = TrainConfig::quick(30);
    let (mut model, mut batcher) = setup(502);
    let mut opt = AdamW::new();
    let res = ResilienceConfig {
        policy: Some(RecoveryPolicy::SkipStep),
        fault_plan: FaultPlan::new()
            .inject(6, FaultKind::NanGrad)
            .inject(12, FaultKind::InfGrad),
        ..ResilienceConfig::default()
    };
    let log = pretrain_resilient(&mut model, &mut opt, &mut batcher, &cfg, &res);
    assert_eq!(log.resilience.non_finite_grads, 2);
    assert_eq!(log.resilience.skipped_steps, 2);
    assert!(!log.resilience.aborted);
    assert!(log.final_ppl.is_finite());
    assert!(model.params.iter().all(|p| p.value.all_finite()));
}

#[test]
fn clip_and_continue_repairs_the_gradient() {
    let cfg = TrainConfig::quick(30);
    let (mut model, mut batcher) = setup(503);
    let mut opt = AdamW::new();
    let res = ResilienceConfig {
        policy: Some(RecoveryPolicy::ClipAndContinue),
        fault_plan: FaultPlan::new().inject(8, FaultKind::NanGrad),
        ..ResilienceConfig::default()
    };
    let log = pretrain_resilient(&mut model, &mut opt, &mut batcher, &cfg, &res);
    assert_eq!(log.resilience.non_finite_grads, 1);
    assert_eq!(log.resilience.clipped_steps, 1);
    assert_eq!(log.resilience.skipped_steps, 0);
    assert!(log.final_ppl.is_finite());
    assert!(model.params.iter().all(|p| p.value.all_finite()));
}

#[test]
fn rollback_and_retry_recovers_with_lr_backoff() {
    let cfg = TrainConfig::quick(30);
    let (mut model, mut batcher) = setup(504);
    let mut opt = Apollo::new(4, 10);
    let res = ResilienceConfig {
        policy: Some(RecoveryPolicy::RollbackAndRetry { lr_backoff: 0.5 }),
        snapshot_every: 5,
        fault_plan: FaultPlan::new().inject(12, FaultKind::NanGrad),
        ..ResilienceConfig::default()
    };
    let log = pretrain_resilient(&mut model, &mut opt, &mut batcher, &cfg, &res);
    assert_eq!(log.resilience.non_finite_grads, 1);
    assert_eq!(log.resilience.rollbacks, 1);
    assert!(!log.resilience.aborted);
    assert!(log.final_ppl.is_finite());
    assert!(model.params.iter().all(|p| p.value.all_finite()));
}

#[test]
fn spike_detector_flags_injected_spike_and_skips_it() {
    let cfg = TrainConfig::quick(30);
    let (mut model, mut batcher) = setup(505);
    let mut opt = AdamW::new();
    let res = ResilienceConfig {
        policy: Some(RecoveryPolicy::SkipStep),
        spike_window: 8,
        spike_factor: 3.0,
        fault_plan: FaultPlan::new().inject(15, FaultKind::LossSpike { factor: 100.0 }),
        ..ResilienceConfig::default()
    };
    let log = pretrain_resilient(&mut model, &mut opt, &mut batcher, &cfg, &res);
    assert_eq!(log.resilience.loss_spikes, 1);
    assert_eq!(log.resilience.skipped_steps, 1);
    // The spiked loss never entered the log as an accepted sample of a
    // post-recovery step's baseline; training still converged.
    assert!(log.final_ppl.is_finite());
}

#[test]
fn abort_policy_stops_the_run() {
    let cfg = TrainConfig::quick(30);
    let (mut model, mut batcher) = setup(506);
    let mut opt = AdamW::new();
    let res = ResilienceConfig {
        policy: Some(RecoveryPolicy::Abort),
        fault_plan: FaultPlan::new().inject(4, FaultKind::NanGrad),
        ..ResilienceConfig::default()
    };
    let log = pretrain_resilient(&mut model, &mut opt, &mut batcher, &cfg, &res);
    assert!(log.resilience.aborted);
    // Aborted after 4 clean steps: the loss log stops there.
    assert!(log.train_losses.iter().all(|&(s, _)| s < 4));
}

#[test]
fn consecutive_fault_limit_aborts_even_under_skip() {
    let cfg = TrainConfig::quick(30);
    let (mut model, mut batcher) = setup(507);
    let mut opt = AdamW::new();
    let mut plan = FaultPlan::new();
    for step in 5..15 {
        plan = plan.inject(step, FaultKind::NanGrad);
    }
    let res = ResilienceConfig {
        policy: Some(RecoveryPolicy::SkipStep),
        max_consecutive_faults: 3,
        fault_plan: plan,
        ..ResilienceConfig::default()
    };
    let log = pretrain_resilient(&mut model, &mut opt, &mut batcher, &cfg, &res);
    assert!(log.resilience.aborted, "a fault storm must abort the run");
    assert_eq!(log.resilience.skipped_steps, 3);
}

// ---------------------------------------------------------------------------
// Optimizer state round-trips: save, reload into a fresh optimizer, and
// verify the continued trajectory is bit-identical.

fn quad_updates<'a>(w: &'a mut Matrix, g: &'a Matrix) -> [ParamUpdate<'a>; 1] {
    [ParamUpdate {
        name: "w",
        value: w,
        grad: g,
        projectable: true,
    }]
}

/// Steps `opt` on a deterministic quadratic for `n` steps starting from
/// `w`; returns the final weights.
fn drive(opt: &mut dyn Optimizer, w: &mut Matrix, n: usize) {
    for k in 0..n {
        let g = w.clone().scale(1.0 + 0.1 * (k % 3) as f32);
        let mut updates = quad_updates(w, &g);
        opt.step(&mut updates, 0.01);
    }
}

fn assert_roundtrip_continues_identically(mut make: impl FnMut() -> Box<dyn Optimizer>) {
    let mut rng = Rng::seed_from_u64(99);
    let w0 = Matrix::randn(8, 16, &mut rng);

    // Reference: 12 uninterrupted steps.
    let mut opt_a = make();
    let mut w_a = w0.clone();
    drive(opt_a.as_mut(), &mut w_a, 12);

    // Save after 6 steps, restore into a brand-new optimizer, continue.
    let mut opt_b = make();
    let mut w_b = w0.clone();
    drive(opt_b.as_mut(), &mut w_b, 6);
    let bytes = opt_b
        .state_save()
        .unwrap_or_else(|e| panic!("{}: {e}", opt_b.name()));
    let mut opt_c = make();
    opt_c
        .state_load(&bytes)
        .unwrap_or_else(|e| panic!("{}: {e}", opt_c.name()));
    drive(opt_c.as_mut(), &mut w_b, 6);

    let name = opt_c.name();
    for (x, y) in w_a.as_slice().iter().zip(w_b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{name} diverged after reload");
    }
}

#[test]
fn every_optimizer_roundtrips_state_bit_exactly() {
    let makes: Vec<Box<dyn FnMut() -> Box<dyn Optimizer>>> = vec![
        Box::new(|| Box::new(AdamW::new())),
        Box::new(|| Box::new(AdamWChannelwise::new())),
        Box::new(|| Box::new(Sgd::new())),
        Box::new(|| Box::new(SgdMomentum::new(0.9))),
        Box::new(|| Box::new(AdamMini::new())),
        Box::new(|| Box::new(Apollo::new(4, 5))),
        Box::new(|| Box::new(Apollo::new(4, 5).with_granularity(ScaleGranularity::Tensor))),
        Box::new(|| Box::new(GaLore::new(4, 5))),
        Box::new(|| Box::new(GaLore::new(4, 5).with_random_projection())),
        Box::new(|| Box::new(Fira::new(4, 5))),
        Box::new(|| Box::new(Flora::new(4, 5))),
    ];
    for make in makes {
        assert_roundtrip_continues_identically(make);
    }
}

#[test]
fn state_load_rejects_the_wrong_optimizer() {
    let mut w = Matrix::full(4, 4, 1.0);
    let mut adamw = AdamW::new();
    drive(&mut adamw, &mut w, 2);
    let bytes = adamw.state_save().unwrap();
    let mut sgd = Sgd::new();
    let err = sgd.state_load(&bytes).unwrap_err();
    assert!(err.contains("AdamW") && err.contains("SGD"), "error: {err}");
}

#[test]
fn truncated_optimizer_state_is_a_descriptive_error() {
    let mut w = Matrix::full(4, 4, 1.0);
    let mut opt = Apollo::new(2, 5);
    drive(&mut opt, &mut w, 3);
    let bytes = opt.state_save().unwrap();
    let mut fresh = Apollo::new(2, 5);
    let err = fresh.state_load(&bytes[..bytes.len() - 7]).unwrap_err();
    assert!(!err.is_empty());
    // The failed load must not have clobbered the fresh state.
    assert_eq!(fresh.state_elems(), 0);
}
