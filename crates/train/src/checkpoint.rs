//! Model checkpointing: a compact binary format for saving and resuming
//! trained models.
//!
//! Layout: a JSON metadata header (magic, format version, [`ModelConfig`],
//! [`LinearMode`], parameter manifest) followed by the raw little-endian
//! f32 parameter data in manifest order. Loading reconstructs the model
//! topology from the config/mode and fills parameters by name, validating
//! every shape.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

const MAGIC: &str = "apollo-checkpoint";
const VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    config: ModelConfig,
    mode: LinearMode,
    /// `(name, rows, cols)` in storage order.
    manifest: Vec<(String, usize, usize)>,
}

/// Saves a model to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn save_model(model: &LlamaModel, mode: LinearMode, path: &Path) -> io::Result<()> {
    let header = Header {
        magic: MAGIC.to_string(),
        version: VERSION,
        config: model.config().clone(),
        mode,
        manifest: model
            .params
            .iter()
            .map(|p| (p.name.clone(), p.value.rows(), p.value.cols()))
            .collect(),
    };
    let mut w = BufWriter::new(File::create(path)?);
    let head = serde_json::to_vec(&header).map_err(io::Error::other)?;
    w.write_all(&(head.len() as u64).to_le_bytes())?;
    w.write_all(&head)?;
    for p in &model.params {
        for &x in p.value.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Loads a model saved by [`save_model`].
///
/// # Errors
///
/// Returns an error if the file is unreadable, the magic/version mismatch,
/// or any parameter is missing or has the wrong shape.
pub fn load_model(path: &Path) -> io::Result<LlamaModel> {
    let mut r = BufReader::new(File::open(path)?);
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let head_len = u64::from_le_bytes(len8) as usize;
    // Guard against garbage files: no sane header exceeds a few MB.
    if head_len > 16 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a checkpoint"));
    }
    let mut head = vec![0u8; head_len];
    r.read_exact(&mut head)?;
    let header: Header = serde_json::from_slice(&head).map_err(io::Error::other)?;
    if header.magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a checkpoint"));
    }
    if header.version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {}", header.version),
        ));
    }

    // Rebuild the topology, then overwrite values in manifest order.
    let mut model = LlamaModel::new(&header.config, header.mode, &mut Rng::seed_from_u64(0));
    for (name, rows, cols) in &header.manifest {
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        let param = model
            .params
            .iter_mut()
            .find(|p| &p.name == name)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("unknown param {name}"))
            })?;
        if param.value.shape() != (*rows, *cols) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch for {name}"),
            ));
        }
        param.value = Matrix::from_vec(*rows, *cols, data);
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("apollo-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_model_exactly() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(200);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let path = tmp("dense.ckpt");
        save_model(&model, LinearMode::Dense, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        for (a, b) in model.params.iter().zip(&loaded.params) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.value, b.value, "{}", a.name);
            assert_eq!(a.trainable, b.trainable);
        }
    }

    #[test]
    fn loaded_model_evaluates_identically() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(201);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let path = tmp("eval.ckpt");
        save_model(&model, LinearMode::Dense, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
        let batcher = LmBatcher::new(corpus, 2, cfg.max_seq);
        let (tokens, targets, _) = batcher.validation_set(4);
        assert_eq!(
            model.eval_loss(&tokens, &targets, 2),
            loaded.eval_loss(&tokens, &targets, 2)
        );
    }

    #[test]
    fn lora_checkpoints_roundtrip() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(202);
        let mode = LinearMode::LoRa { rank: 2, alpha: 4.0 };
        let model = LlamaModel::new(&cfg, mode, &mut rng);
        let path = tmp("lora.ckpt");
        save_model(&model, mode, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(model.params.len(), loaded.params.len());
        assert_eq!(model.num_trainable(), loaded.num_trainable());
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage.ckpt");
        std::fs::write(&path, b"not a checkpoint at all............").unwrap();
        assert!(load_model(&path).is_err());
    }
}
