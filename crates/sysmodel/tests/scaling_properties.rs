//! Cross-geometry invariants of the analytic memory/throughput model.

use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::{Gpu, MemoryOptions, ThroughputModel, TrainingMemoryModel, WeightPrecision};

fn geometries() -> Vec<ModelConfig> {
    vec![
        ModelConfig::llama_60m(),
        ModelConfig::llama_130m(),
        ModelConfig::llama_350m(),
        ModelConfig::llama_1b(),
        ModelConfig::llama_7b(),
        ModelConfig::llama_13b(),
    ]
}

#[test]
fn memory_is_monotone_in_model_size_for_every_method() {
    let opts = MemoryOptions::figure1(256);
    for spec in [
        MethodSpec::AdamW,
        MethodSpec::GaLore { rank: 128 },
        MethodSpec::Apollo { rank: 128 },
        MethodSpec::ApolloMini,
        MethodSpec::Fira { rank: 128 },
    ] {
        let totals: Vec<f64> = geometries()
            .iter()
            .map(|c| {
                TrainingMemoryModel::new(c)
                    .breakdown(spec, &opts)
                    .total_gib()
            })
            .collect();
        assert!(
            totals.windows(2).all(|w| w[0] < w[1]),
            "{}: {totals:?}",
            spec.label()
        );
    }
}

#[test]
fn method_ordering_is_preserved_at_every_size() {
    // AdamW > GaLore > APOLLO > Mini holds across the whole family.
    let opts = MemoryOptions::figure1(256);
    for cfg in geometries() {
        let mem = TrainingMemoryModel::new(&cfg);
        let rank = cfg.default_rank();
        let adamw = mem.breakdown(MethodSpec::AdamW, &opts).total_gib();
        let galore = mem
            .breakdown(MethodSpec::GaLore { rank }, &opts)
            .total_gib();
        let apollo = mem
            .breakdown(MethodSpec::Apollo { rank }, &opts)
            .total_gib();
        let mini = mem.breakdown(MethodSpec::ApolloMini, &opts).total_gib();
        assert!(
            adamw > galore && galore > apollo && apollo > mini,
            "{}: {adamw:.2} {galore:.2} {apollo:.2} {mini:.2}",
            cfg.name
        );
    }
}

#[test]
fn doubling_rank_increases_only_projected_state() {
    let cfg = ModelConfig::llama_350m();
    let mem = TrainingMemoryModel::new(&cfg);
    let opts = MemoryOptions::figure1(256);
    let low = mem.breakdown(MethodSpec::Apollo { rank: 64 }, &opts);
    let high = mem.breakdown(MethodSpec::Apollo { rank: 128 }, &opts);
    assert_eq!(low.weights_gib, high.weights_gib);
    assert_eq!(low.activations_gib, high.activations_gib);
    assert!(high.optimizer_gib > low.optimizer_gib);
    // Projected moments double; the dense embed/head floor does not.
    assert!(high.optimizer_gib < 2.0 * low.optimizer_gib);
}

#[test]
fn int8_weights_never_change_optimizer_term() {
    let cfg = ModelConfig::llama_1b();
    let mem = TrainingMemoryModel::new(&cfg);
    let bf16 = MemoryOptions::figure1(256);
    let int8 = MemoryOptions {
        weights: WeightPrecision::Int8 { group: 128 },
        ..bf16
    };
    for spec in [MethodSpec::Apollo { rank: 512 }, MethodSpec::ApolloMini] {
        let a = mem.breakdown(spec, &bf16);
        let b = mem.breakdown(spec, &int8);
        assert_eq!(a.optimizer_gib, b.optimizer_gib, "{}", spec.label());
        assert!(b.weights_gib < a.weights_gib);
    }
}

#[test]
fn svd_refresh_scales_superlinearly_with_geometry() {
    let times: Vec<f64> = geometries()
        .iter()
        .map(|c| ThroughputModel::new(c, Gpu::a100_80g(), 8, 256).svd_refresh_seconds())
        .collect();
    assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    // 7B (index 4) is calibrated to the paper's 600 s.
    assert!((times[4] - 600.0).abs() < 1.0);
}

#[test]
fn more_gpus_mean_more_throughput_never_less_memory_per_gpu() {
    let cfg = ModelConfig::llama_7b();
    let opts = MemoryOptions::standard(1, 256);
    let one = ThroughputModel::new(&cfg, Gpu::a100_80g(), 1, 256);
    let eight = ThroughputModel::new(&cfg, Gpu::a100_80g(), 8, 256);
    let spec = MethodSpec::Apollo { rank: 256 };
    let r1 = one.report(spec, &opts);
    let r8 = eight.report(spec, &opts);
    assert!(r8.tokens_per_sec > 6.0 * r1.tokens_per_sec);
    assert_eq!(r1.micro_batch, r8.micro_batch, "DDP replicates, not shards");
}

#[test]
fn consumer_gpu_fits_strictly_fewer_configurations() {
    let opts = MemoryOptions::figure1(256);
    let mut a100_fits = 0;
    let mut consumer_fits = 0;
    for cfg in geometries() {
        let mem = TrainingMemoryModel::new(&cfg);
        let total = mem.breakdown(MethodSpec::ApolloMini, &opts).total_gib();
        if total <= Gpu::a100_80g().memory_gib {
            a100_fits += 1;
        }
        if total <= Gpu::consumer_12g().memory_gib {
            consumer_fits += 1;
        }
    }
    assert!(a100_fits > consumer_fits);
    assert!(a100_fits >= 5, "A100 should hold up to 13B with Mini");
}
