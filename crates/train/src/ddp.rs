//! Deterministic multi-replica data-parallel pre-training with ZeRO-style
//! optimizer-state sharding and elastic replica recovery.
//!
//! # Replica-count invariance
//!
//! The global batch is decomposed into `virtual_slots` fixed micro-batches
//! ("slots"). Slot `s` at step `k` always draws the same corpus streams
//! (cursor `1 + (k·V + s)·slot_batch`), its loss and gradients are computed
//! by exactly one replica, and the per-parameter gradients are combined by
//! a **fixed pairwise binary tree over slots** — `((g0+g1)+(g2+g3))` for
//! `V = 4` — then scaled by `1/V`. Replica count only changes *which
//! replica owns which slots*, never the operands or the reduction order,
//! so losses and weights are bit-identical at any replica count. This is
//! the same float-op-order contract the matmul pool honors for
//! thread-count invariance, lifted to the replica level. It also makes
//! elastic membership free: survivors re-partition slots and replay.
//!
//! # ZeRO-style state sharding
//!
//! Optimizer state is built as one optimizer instance **per parameter**
//! (the [`OptimizerFactory`] receives the global parameter index, so
//! position-derived projector seeds stay stable under any sharding).
//! Each replica owns a contiguous shard of parameters — balanced by
//! element count — and holds only that shard's state. States are
//! re-gathered (via [`apollo_optim::Optimizer::state_save`]) only at
//! checkpoint time, framed per-parameter inside the v2 checkpoint's
//! optimizer section, so a checkpoint written at one replica count resumes
//! at any other.
//!
//! # Elastic recovery
//!
//! A [`crate::FaultKind::ReplicaKill`] fault (or any replica death) poisons
//! the step barrier; survivors abandon the in-flight step, the driver
//! drops the member, re-partitions shards and slots over the survivors,
//! restores the newest recovery floor (the latest valid on-disk checkpoint,
//! else the in-memory round-start state), and replays. Determinism makes
//! the resumed run bit-identical to an undisturbed one.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use apollo_data::LmBatcher;
use apollo_nn::{LlamaModel, ParamKind};
use apollo_obs::{Obs, Phase, PhaseSample, TraceEvent};
use apollo_optim::{Optimizer, ParamUpdate};
use apollo_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    checkpoint_file_name, latest_valid_checkpoint, prune_checkpoints, save_train_state, TrainMeta,
};
use crate::resilience::{ResilienceConfig, ResilienceReport};
use crate::schedule::LrSchedule;
use crate::trainer::{eval_perplexity, RunLog, TrainConfig};

/// Builds the optimizer instance owning the state of one parameter.
///
/// The argument is the parameter's **global optimizer index** (position
/// among trainable parameters), so factories can derive position-dependent
/// state — e.g. APOLLO's per-parameter projector seeds — identically at
/// every replica count: `Apollo::new(rank, freq).with_seed(base + index)`.
pub type OptimizerFactory = dyn Fn(usize) -> Box<dyn Optimizer> + Sync;

/// Data-parallel execution parameters.
#[derive(Debug, Clone)]
pub struct DdpConfig {
    /// Replica (worker thread) count.
    pub replicas: usize,
    /// Fixed virtual-slot count `V`. The global batch must divide by it,
    /// and `replicas` must not exceed it. Runs with the same `V` are
    /// bit-identical at any replica count; changing `V` changes the
    /// micro-batch decomposition and therefore the arithmetic.
    pub virtual_slots: usize,
    /// Kernel threads each replica's math may use (thread-local override;
    /// 1 keeps replicas fully parallel with no pool contention).
    pub threads_per_replica: usize,
}

impl DdpConfig {
    /// `replicas` replicas over the default 4 virtual slots (widened to
    /// `replicas` when it is larger).
    pub fn new(replicas: usize) -> Self {
        DdpConfig {
            replicas,
            virtual_slots: 4.max(replicas),
            threads_per_replica: 1,
        }
    }
}

/// What the DDP driver did: membership, rounds, and recovery counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DdpReport {
    /// Replicas the run started with.
    pub replicas: usize,
    /// Replicas alive at the end.
    pub survivors: usize,
    /// Virtual-slot count `V`.
    pub virtual_slots: usize,
    /// Synchronized rounds executed (1 + one per membership change).
    pub rounds: usize,
    /// Replicas killed (injected or real).
    pub replica_kills: usize,
    /// Shard re-partitions after membership changes.
    pub rebalances: usize,
}

/// A [`RunLog`] plus the DDP driver's own audit.
#[derive(Debug, Clone)]
pub struct DdpRunLog {
    /// The training log, same shape as the serial loop's.
    pub log: RunLog,
    /// Membership/recovery audit.
    pub ddp: DdpReport,
}

// ---------------------------------------------------------------------------
// Poisonable generation barrier.
//
// `std::sync::Barrier` has a fixed participant count and no way to release
// waiters when a participant dies; this one adds `poison`, which wakes
// everyone and makes every subsequent wait fail fast, so a replica death
// unwinds the whole round instead of deadlocking it.

/// Returned by [`PoisonBarrier::wait`] when the barrier was poisoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Poisoned;

struct BarrierState {
    waiting: usize,
    generation: u64,
    poisoned: bool,
}

struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        PoisonBarrier {
            n,
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `n` participants arrive, or the barrier is
    /// poisoned — whichever happens first.
    fn wait(&self) -> Result<(), Poisoned> {
        let mut s = self.state.lock().unwrap();
        if s.poisoned {
            return Err(Poisoned);
        }
        s.waiting += 1;
        if s.waiting == self.n {
            s.waiting = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen && !s.poisoned {
            s = self.cv.wait(s).unwrap();
        }
        if s.generation == gen {
            // Released by poison, not by the last arrival.
            s.waiting -= 1;
            Err(Poisoned)
        } else {
            Ok(())
        }
    }

    /// Wakes every waiter and fails all future waits.
    fn poison(&self) {
        let mut s = self.state.lock().unwrap();
        s.poisoned = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Deterministic partitions and reductions.

/// Contiguous slot range owned by replica position `pos` of `n`.
fn slot_range(pos: usize, n: usize, total: usize) -> Range<usize> {
    pos * total / n..(pos + 1) * total / n
}

/// Contiguous per-replica parameter shards, balanced by element count.
/// Every shard is non-empty (requires `shards <= elems.len()`).
fn shard_ranges(elems: &[usize], shards: usize) -> Vec<Range<usize>> {
    assert!(
        (1..=elems.len()).contains(&shards),
        "need 1..={} shards, got {shards}",
        elems.len()
    );
    let total: u128 = elems.iter().map(|&e| e as u128).sum();
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut cum: u128 = 0;
    for j in 0..shards {
        let target = total * (j as u128 + 1) / shards as u128;
        // Leave at least one parameter for each shard still to come.
        let max_end = elems.len() - (shards - j - 1);
        let mut end = start;
        while end < max_end {
            // Take the next parameter only while it moves the boundary
            // closer to the target (2·cum + e < 2·target ⇔ the overshoot
            // after adding is smaller than the undershoot before).
            if end > start && 2 * cum + elems[end] as u128 >= 2 * target {
                break;
            }
            cum += elems[end] as u128;
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, elems.len(), "shards must cover every parameter");
    out
}

/// Combines `items` with a fixed pairwise binary tree: level by level,
/// `(0,1)(2,3)…`, odd leftovers passing through. The combine order depends
/// only on `items.len()`, never on who calls it — the replica-invariance
/// contract.
fn tree_combine<T>(mut items: Vec<T>, combine: impl Fn(&mut T, T)) -> T {
    assert!(!items.is_empty());
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                combine(&mut a, b);
            }
            next.push(a);
        }
        items = next;
    }
    items.pop().unwrap()
}

// ---------------------------------------------------------------------------
// Per-parameter optimizer-state framing inside the v2 checkpoint's
// optimizer section: magic | u64 count | count × (u64 len | bytes).
// Per-parameter blobs are what makes a checkpoint re-shardable at any
// replica count.

const OPT_MAGIC: &[u8; 8] = b"ddpopt-1";

fn pack_opt_blobs(blobs: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = blobs.iter().map(|b| 8 + b.len()).sum();
    let mut out = Vec::with_capacity(16 + total);
    out.extend_from_slice(OPT_MAGIC);
    out.extend_from_slice(&(blobs.len() as u64).to_le_bytes());
    for b in blobs {
        out.extend_from_slice(&(b.len() as u64).to_le_bytes());
        out.extend_from_slice(b);
    }
    out
}

fn unpack_opt_blobs(bytes: &[u8]) -> Result<Vec<Vec<u8>>, String> {
    let rest = bytes
        .strip_prefix(OPT_MAGIC)
        .ok_or("not a sharded optimizer-state section")?;
    let take_u64 = |rest: &mut &[u8], what: &str| -> Result<u64, String> {
        let (head, tail) = rest
            .split_first_chunk::<8>()
            .ok_or_else(|| format!("truncated before {what}"))?;
        *rest = tail;
        Ok(u64::from_le_bytes(*head))
    };
    let mut rest = rest;
    let count = take_u64(&mut rest, "blob count")?;
    let mut blobs = Vec::new();
    for i in 0..count {
        let len = take_u64(&mut rest, "blob length")? as usize;
        if len > rest.len() {
            return Err(format!(
                "blob {i} claims {len} bytes, {} remain",
                rest.len()
            ));
        }
        blobs.push(rest[..len].to_vec());
        rest = &rest[len..];
    }
    if !rest.is_empty() {
        return Err(format!("{} trailing bytes after blobs", rest.len()));
    }
    Ok(blobs)
}

// ---------------------------------------------------------------------------
// Round state.

/// The canonical run state between rounds: everything needed to (re)start
/// a synchronized round at `step` with any membership.
struct Canonical {
    params: Vec<Matrix>,
    opt_blobs: Vec<Vec<u8>>,
    step: usize,
    report: ResilienceReport,
}

/// One slot's published result: loss plus per-model-parameter gradients
/// (shard owners `take` their parameters' entries during reduction).
struct SlotOut {
    loss: f32,
    grads: Vec<Option<Matrix>>,
}

/// State shared by all replica threads of one round.
struct RoundShared {
    barrier: PoisonBarrier,
    /// Per-slot results for the in-flight step.
    slots: Vec<Mutex<Option<SlotOut>>>,
    /// Post-step parameter values, published by each shard owner.
    bcast: Vec<Mutex<Option<Matrix>>>,
    /// Per-parameter optimizer-state blobs gathered at checkpoint time.
    gathered: Vec<Mutex<Vec<u8>>>,
    /// Optimizer-state footprint `(elems, bytes)` summed over shards.
    footprint: Mutex<(usize, usize)>,
    /// `victim_id + 1` once a replica died this round; 0 = none.
    killed: AtomicUsize,
}

/// What the leader replica brings back from a completed round.
struct RoundOut {
    losses: Vec<(usize, f32)>,
    evals: Vec<(usize, f32)>,
    final_ppl: f32,
    model: LlamaModel,
    report: ResilienceReport,
    footprint: (usize, usize),
}

enum RoundOutcome {
    Finished(Box<RoundOut>),
    Killed {
        victim: usize,
        step: usize,
        /// The leader's partial log up to the kill (absent when the
        /// leader itself was the victim's barrier casualty before
        /// producing anything — never in practice, but tolerated).
        partial: Option<Box<RoundOut>>,
    },
}

/// Everything a round needs that does not change across rounds.
struct RoundCtx<'a> {
    cfg: &'a TrainConfig,
    res: &'a ResilienceConfig,
    obs: &'a Obs,
    make_opt: &'a OptimizerFactory,
    model: &'a LlamaModel,
    batcher: &'a LmBatcher,
    /// Model-parameter index of each optimizer parameter.
    opt_params: &'a [usize],
    schedule: LrSchedule,
    virtual_slots: usize,
    threads_per_replica: usize,
    global_batch: usize,
}

impl RoundCtx<'_> {
    fn checkpoint_due(&self, step: usize, start_step: usize) -> bool {
        self.res.checkpoint_dir.is_some()
            && self.res.checkpoint_every > 0
            && step > 0
            && step != start_step
            && step.is_multiple_of(self.res.checkpoint_every)
    }

    /// Writes the crash-safe checkpoint capturing "about to run `step`",
    /// assembling the optimizer section from the gathered per-parameter
    /// blobs. Leader-only.
    fn write_checkpoint(
        &self,
        step: usize,
        model: &LlamaModel,
        shared: &RoundShared,
        report: &mut ResilienceReport,
    ) {
        let Some(dir) = &self.res.checkpoint_dir else {
            return;
        };
        let blobs: Vec<Vec<u8>> = shared
            .gathered
            .iter()
            .map(|g| g.lock().unwrap().clone())
            .collect();
        let optimizer = pack_opt_blobs(&blobs);
        let meta = TrainMeta {
            step: step as u64,
            data_cursor: 1 + step as u64 * self.global_batch as u64,
            rng_state: Vec::new(),
            rng_spare: None,
            lr_scale: 1.0,
            spike_window: Vec::new(),
            report: report.clone(),
        };
        let result = std::fs::create_dir_all(dir).and_then(|()| {
            save_train_state(
                model,
                model.mode(),
                &meta,
                &optimizer,
                &dir.join(checkpoint_file_name(step as u64)),
            )
        });
        match result {
            Ok(()) => {
                report.checkpoints_written += 1;
                self.obs.counter("ddp.checkpoints", 1);
                let _ = prune_checkpoints(dir, self.res.keep_last.max(1));
            }
            Err(e) => {
                eprintln!("warning: checkpoint write failed ({e})");
                report.checkpoint_errors += 1;
            }
        }
    }
}

/// The body of one replica thread for one round. The leader (position 0)
/// always returns its round output — partial when the round was killed, so
/// pre-kill loss/eval samples survive into the merged log; other replicas
/// return `None`.
#[allow(clippy::too_many_lines)]
fn replica_main(
    ctx: &RoundCtx<'_>,
    shared: &RoundShared,
    canonical: &Canonical,
    members: &[usize],
    pos: usize,
    kill: Option<(usize, usize)>,
) -> Option<Box<RoundOut>> {
    let _threads = apollo_tensor::ThreadOverrideGuard::new(ctx.threads_per_replica.max(1));
    let my_id = members[pos];
    let leader = pos == 0;
    let replicas = members.len();
    let v = ctx.virtual_slots;
    let slot_batch = ctx.global_batch / v;
    let start_step = canonical.step;

    // Private model copy seeded from the canonical weights.
    let mut model = ctx.model.clone();
    for (p, value) in model.params.iter_mut().zip(&canonical.params) {
        p.value.copy_from(value);
    }
    // This shard's per-parameter optimizers, state restored from the
    // canonical blobs.
    let shard = shard_ranges(
        &ctx.opt_params
            .iter()
            .map(|&mi| ctx.model.params[mi].value.len())
            .collect::<Vec<_>>(),
        replicas,
    )[pos]
        .clone();
    let mut opts: Vec<Box<dyn Optimizer>> = shard
        .clone()
        .map(|j| {
            let mut opt = (ctx.make_opt)(j);
            if !canonical.opt_blobs[j].is_empty() {
                opt.state_load(&canonical.opt_blobs[j])
                    .unwrap_or_else(|e| panic!("optimizer state for param {j} is invalid: {e}"));
            }
            opt
        })
        .collect();
    let my_slots = slot_range(pos, replicas, v);
    let mut slot_batcher = ctx.batcher.with_batch(slot_batch);
    let eval_batcher = ctx.batcher.clone();
    let loss_sample_every = (ctx.cfg.steps / 200).max(1);

    let mut out = Box::new(RoundOut {
        losses: Vec::new(),
        evals: Vec::new(),
        final_ppl: f32::NAN,
        model: ctx.model.clone(),
        report: canonical.report.clone(),
        footprint: (0, 0),
    });

    // Gathers this shard's optimizer state into the shared blob table.
    let gather_shard = |opts: &[Box<dyn Optimizer>]| {
        for (local, j) in shard.clone().enumerate() {
            let blob = opts[local]
                .state_save()
                .unwrap_or_else(|e| panic!("state_save for param {j} failed: {e}"));
            *shared.gathered[j].lock().unwrap() = blob;
        }
    };

    for step in start_step..ctx.cfg.steps {
        // Fault injection: this replica dies *now*, mid-flight, without
        // publishing anything — survivors unwind at their next barrier.
        if kill == Some((step, my_id)) {
            shared.killed.store(my_id + 1, Ordering::SeqCst);
            shared.barrier.poison();
            return leader.then_some(out);
        }
        if leader {
            ctx.obs.set_step(step);
        }
        let step_started = Instant::now();
        let mut sample = PhaseSample::new();

        // Periodic checkpoint: every replica contributes its shard's state,
        // then the leader assembles and writes.
        if ctx.checkpoint_due(step, start_step) {
            let checkpointing = sample.time(Phase::Checkpoint, || {
                gather_shard(&opts);
                if shared.barrier.wait().is_err() {
                    return Err(Poisoned);
                }
                if leader {
                    ctx.write_checkpoint(step, &model, shared, &mut out.report);
                }
                Ok(())
            });
            if checkpointing.is_err() {
                return leader.then_some(out);
            }
        }

        // Phase A: compute this replica's slots against the synced weights.
        for s in my_slots.clone() {
            let (tokens, targets) = sample.time(Phase::BatchPrep, || {
                slot_batcher
                    .set_cursor(1 + (step as u64 * v as u64 + s as u64) * slot_batch as u64);
                slot_batcher.next_batch()
            });
            let (mut graph, loss_id, pnodes) = sample.time(Phase::Forward, || {
                model.build_loss(&tokens, &targets, slot_batch)
            });
            let loss = graph.value(loss_id).get(0, 0);
            let grads = sample.time(Phase::Backward, || {
                graph.backward(loss_id);
                model.collect_grads(&graph, &pnodes)
            });
            drop(graph);
            *shared.slots[s].lock().unwrap() = Some(SlotOut { loss, grads });
        }
        if shared.barrier.wait().is_err() {
            return leader.then_some(out);
        }

        // Phase B: tree-reduce and step this shard, publish updated values.
        let lr = ctx.schedule.lr_at(step);
        let mut shard_sq_norm = 0.0f64;
        sample.time(Phase::Optimizer, || {
            for (local, j) in shard.clone().enumerate() {
                let mi = ctx.opt_params[j];
                let slot_grads: Vec<Matrix> = (0..v)
                    .map(|s| {
                        shared.slots[s].lock().unwrap().as_mut().unwrap().grads[mi]
                            .take()
                            .expect("trainable parameter must have a gradient")
                    })
                    .collect();
                let mut g = tree_combine(slot_grads, |a, b| {
                    a.add_assign(&b);
                    b.recycle();
                });
                g.scale_assign(1.0 / v as f32);
                let n = f64::from(g.fro_norm());
                shard_sq_norm += n * n;
                let p = &mut model.params[mi];
                let mut updates = [ParamUpdate {
                    name: &p.name,
                    value: &mut p.value,
                    grad: &g,
                    projectable: p.kind == ParamKind::Projectable,
                }];
                opts[local].step(&mut updates, lr);
                g.recycle();
                let updated = p.value.clone();
                if let Some(old) = shared.bcast[j].lock().unwrap().replace(updated) {
                    old.recycle();
                }
            }
        });

        // Leader: the global loss is the same fixed tree over slot losses.
        if leader {
            let slot_losses: Vec<f32> = (0..v)
                .map(|s| shared.slots[s].lock().unwrap().as_ref().unwrap().loss)
                .collect();
            let loss = tree_combine(slot_losses, |a, b| *a += b) / v as f32;
            ctx.obs.counter("ddp.steps", 1);
            if ctx.obs.sample_due() {
                let gn = shard_sq_norm.sqrt() as f32;
                ctx.obs.gauge("loss", f64::from(loss));
                ctx.obs.gauge("lr", f64::from(lr));
                ctx.obs.emit(|| TraceEvent::StepMetrics {
                    step,
                    loss,
                    grad_norm: gn,
                    lr,
                });
            }
            if step.is_multiple_of(loss_sample_every) || step + 1 == ctx.cfg.steps {
                out.losses.push((step, loss));
            }
        }
        if shared.barrier.wait().is_err() {
            return leader.then_some(out);
        }

        // Phase C: pull every other shard's updated parameters.
        for (j, &mi) in ctx.opt_params.iter().enumerate() {
            if !shard.contains(&j) {
                let slot = shared.bcast[j].lock().unwrap();
                model.params[mi]
                    .value
                    .copy_from(slot.as_ref().expect("owner published this parameter"));
            }
        }
        if leader {
            if ctx.cfg.eval_every > 0
                && (step + 1).is_multiple_of(ctx.cfg.eval_every)
                && step + 1 != ctx.cfg.steps
            {
                let ppl = sample.time(Phase::Eval, || {
                    eval_perplexity(&model, &eval_batcher, ctx.cfg.eval_seqs)
                });
                if let Some(ppl) = ppl {
                    out.evals.push((step + 1, ppl));
                }
            }
            let total_ms = step_started.elapsed().as_secs_f32() * 1e3;
            ctx.obs.record_step(&sample, total_ms);
            ctx.obs.emit(|| TraceEvent::StepPhases {
                step,
                batch_ms: sample.get(Phase::BatchPrep),
                forward_ms: sample.get(Phase::Forward),
                backward_ms: sample.get(Phase::Backward),
                clip_ms: 0.0,
                optimizer_ms: sample.get(Phase::Optimizer),
                checkpoint_ms: sample.get(Phase::Checkpoint),
                eval_ms: sample.get(Phase::Eval),
                total_ms,
            });
        }
        // The pre-compute barrier of the next iteration cannot replace
        // this one: owners overwrite `bcast` in their next Phase B, which
        // must not race a slow replica still copying in Phase C.
        if shared.barrier.wait().is_err() {
            return leader.then_some(out);
        }
    }

    // Epilogue: gather every shard once for the footprint and the final
    // checkpoint, then the leader evaluates and reports.
    gather_shard(&opts);
    {
        let mut fp = shared.footprint.lock().unwrap();
        fp.0 += opts.iter().map(|o| o.state_elems()).sum::<usize>();
        fp.1 += opts.iter().map(|o| o.state_bytes()).sum::<usize>();
    }
    if shared.barrier.wait().is_err() {
        return leader.then_some(out);
    }
    if !leader {
        return None;
    }
    if let Some(ppl) = eval_perplexity(&model, &eval_batcher, ctx.cfg.eval_seqs) {
        out.final_ppl = ppl;
        out.evals.push((ctx.cfg.steps, ppl));
    }
    if ctx.res.checkpoint_every > 0 && ctx.cfg.steps != start_step {
        ctx.write_checkpoint(ctx.cfg.steps, &model, shared, &mut out.report);
    }
    out.footprint = *shared.footprint.lock().unwrap();
    out.model = model;
    Some(out)
}

fn run_round(
    ctx: &RoundCtx<'_>,
    canonical: &Canonical,
    members: &[usize],
    kill: Option<(usize, usize)>,
) -> RoundOutcome {
    let shared = RoundShared {
        barrier: PoisonBarrier::new(members.len()),
        slots: (0..ctx.virtual_slots).map(|_| Mutex::new(None)).collect(),
        bcast: (0..ctx.opt_params.len())
            .map(|_| Mutex::new(None))
            .collect(),
        gathered: (0..ctx.opt_params.len())
            .map(|_| Mutex::new(Vec::new()))
            .collect(),
        footprint: Mutex::new((0, 0)),
        killed: AtomicUsize::new(0),
    };
    let mut leader_out: Option<Box<RoundOut>> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..members.len())
            .map(|pos| {
                let shared = &shared;
                s.spawn(move || replica_main(ctx, shared, canonical, members, pos, kill))
            })
            .collect();
        for h in handles {
            if let Some(out) = h.join().expect("replica thread panicked") {
                leader_out = Some(out);
            }
        }
    });
    match shared.killed.load(Ordering::SeqCst) {
        0 => RoundOutcome::Finished(leader_out.expect("completed round has a leader result")),
        id_plus_one => RoundOutcome::Killed {
            victim: id_plus_one - 1,
            step: kill.expect("a kill was injected").0,
            partial: leader_out,
        },
    }
}

// ---------------------------------------------------------------------------
// Driver.

/// Runs multi-replica data-parallel pre-training.
///
/// `batcher` defines the **global** batch (shared by every replica count);
/// `make_opt` builds one optimizer per trainable parameter (see
/// [`OptimizerFactory`]). Losses and final weights are bit-identical for
/// any `ddp.replicas` at a fixed `ddp.virtual_slots`. On return, `model`
/// holds the final weights.
///
/// Supported resilience features: crash-safe sharded checkpoints
/// (`checkpoint_dir`/`checkpoint_every`/`keep_last`/`resume`) and
/// [`crate::FaultKind::ReplicaKill`] entries of the fault plan (each kill
/// drops a member, rebalances, and resumes from the newest recovery
/// floor). Per-step gradient sentinels, recovery policies, and the other
/// fault kinds are serial-loop features and are ignored here.
///
/// # Panics
///
/// Panics if `cfg.steps == 0`, the global batch does not divide by
/// `virtual_slots`, `replicas` exceeds `virtual_slots` or the trainable
/// parameter count, every replica is killed, or `cfg` requests serial-only
/// features (`grad_accum > 1`, `grad_clip`, `merge_every`,
/// `quantize_weights`).
pub fn pretrain_ddp(
    model: &mut LlamaModel,
    make_opt: &OptimizerFactory,
    batcher: &LmBatcher,
    cfg: &TrainConfig,
    ddp: &DdpConfig,
    res: &ResilienceConfig,
    obs: &Obs,
) -> DdpRunLog {
    assert!(cfg.steps > 0, "need at least one step");
    assert!(ddp.replicas >= 1, "need at least one replica");
    assert!(
        ddp.replicas <= ddp.virtual_slots,
        "replicas ({}) must not exceed virtual slots ({})",
        ddp.replicas,
        ddp.virtual_slots
    );
    assert!(
        batcher.batch().is_multiple_of(ddp.virtual_slots),
        "global batch ({}) must divide by virtual slots ({})",
        batcher.batch(),
        ddp.virtual_slots
    );
    assert!(
        cfg.grad_accum <= 1 && cfg.grad_clip.is_none(),
        "grad_accum/grad_clip are serial-loop features"
    );
    assert!(
        cfg.merge_every.is_none() && cfg.quantize_weights.is_none(),
        "merge_every/quantize_weights are serial-loop features"
    );
    let opt_params: Vec<usize> = model
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| p.trainable)
        .map(|(i, _)| i)
        .collect();
    assert!(
        ddp.replicas <= opt_params.len(),
        "more replicas ({}) than trainable parameters ({})",
        ddp.replicas,
        opt_params.len()
    );

    let started = Instant::now();
    let opt_name = make_opt(0).name();
    let mut canonical = Canonical {
        params: model.params.iter().map(|p| p.value.clone()).collect(),
        opt_blobs: vec![Vec::new(); opt_params.len()],
        step: 0,
        report: ResilienceReport::default(),
    };
    let restore_canonical = |canonical: &mut Canonical, state: crate::checkpoint::TrainState| {
        for (p, saved) in model.params.iter().zip(&state.model.params) {
            assert_eq!(p.name, saved.name, "checkpoint/model manifest mismatch");
        }
        canonical.params = state.model.params.into_iter().map(|p| p.value).collect();
        canonical.step = (state.meta.step as usize).min(cfg.steps);
        canonical.report = state.meta.report;
        canonical.opt_blobs = if state.optimizer.is_empty() {
            vec![Vec::new(); opt_params.len()]
        } else {
            match unpack_opt_blobs(&state.optimizer) {
                Ok(blobs) if blobs.len() == opt_params.len() => blobs,
                Ok(blobs) => {
                    eprintln!(
                        "warning: checkpoint has {} optimizer blobs, expected {}; starting fresh",
                        blobs.len(),
                        opt_params.len()
                    );
                    vec![Vec::new(); opt_params.len()]
                }
                Err(e) => {
                    eprintln!("warning: optimizer state not restored ({e}); starting fresh");
                    vec![Vec::new(); opt_params.len()]
                }
            }
        };
    };
    if res.resume {
        if let Some(dir) = &res.checkpoint_dir {
            if let Ok(Some((_, state))) = latest_valid_checkpoint(dir) {
                let step = state.meta.step;
                restore_canonical(&mut canonical, state);
                canonical.report.resumed_from_step = Some(step);
            }
        }
    }

    let mut kills = res.fault_plan.clone().take_replica_kills();
    let mut members: Vec<usize> = (0..ddp.replicas).collect();
    let mut ddp_report = DdpReport {
        replicas: ddp.replicas,
        survivors: ddp.replicas,
        virtual_slots: ddp.virtual_slots,
        ..DdpReport::default()
    };
    let mut losses: BTreeMap<usize, f32> = BTreeMap::new();
    let mut evals: BTreeMap<usize, f32> = BTreeMap::new();

    obs.set_step(canonical.step);
    obs.emit(|| TraceEvent::RunStart {
        step: canonical.step,
        optimizer: format!("ddp×{} {opt_name}", ddp.replicas),
        model: model.config().name.clone(),
        steps: cfg.steps,
    });

    let ctx = RoundCtx {
        cfg,
        res,
        obs,
        make_opt,
        model,
        batcher,
        opt_params: &opt_params,
        schedule: LrSchedule::paper_default(cfg.lr, cfg.steps),
        virtual_slots: ddp.virtual_slots,
        threads_per_replica: ddp.threads_per_replica,
        global_batch: batcher.batch(),
    };

    let finished = loop {
        ddp_report.rounds += 1;
        obs.counter("ddp.rounds", 1);
        obs.gauge("ddp.replicas", members.len() as f64);
        for &m in &members {
            obs.emit(|| TraceEvent::ReplicaEvent {
                step: canonical.step,
                replica: m,
                event: "start".to_string(),
                replicas: members.len(),
            });
        }
        // Only kills that can actually fire this round are armed; stale
        // entries (already-dead target, step already passed) are dropped.
        kills.retain(|&(step, replica)| {
            step >= canonical.step && step < cfg.steps && members.contains(&replica)
        });
        let kill = kills.first().copied();

        match run_round(&ctx, &canonical, &members, kill) {
            RoundOutcome::Finished(out) => break out,
            RoundOutcome::Killed {
                victim,
                step,
                partial,
            } => {
                // Keep the samples the killed round produced: the replay
                // regenerates them bit-identically, and steps before the
                // resume point exist nowhere else.
                if let Some(partial) = partial {
                    for (step, loss) in partial.losses {
                        losses.insert(step, loss);
                    }
                    for (step, ppl) in partial.evals {
                        evals.insert(step, ppl);
                    }
                }
                kills.remove(0);
                members.retain(|&m| m != victim);
                assert!(!members.is_empty(), "every replica was killed");
                ddp_report.replica_kills += 1;
                ddp_report.survivors = members.len();
                obs.counter("ddp.replica_kills", 1);
                obs.emit(|| TraceEvent::ReplicaEvent {
                    step,
                    replica: victim,
                    event: "kill".to_string(),
                    replicas: members.len(),
                });
                // Recovery floor: the newest on-disk checkpoint if it is
                // ahead of the round-start state (which `canonical` still
                // holds — rounds never mutate it), else replay the round.
                if let Some(dir) = &res.checkpoint_dir {
                    if let Ok(Some((_, state))) = latest_valid_checkpoint(dir) {
                        if (state.meta.step as usize) > canonical.step {
                            restore_canonical(&mut canonical, state);
                        }
                    }
                }
                canonical.report.resumed_from_step = Some(canonical.step as u64);
                ddp_report.rebalances += 1;
                obs.counter("ddp.rebalances", 1);
                for &m in &members {
                    obs.emit(|| TraceEvent::ReplicaEvent {
                        step: canonical.step,
                        replica: m,
                        event: "rebalance".to_string(),
                        replicas: members.len(),
                    });
                }
            }
        }
    };

    // Later rounds replay earlier steps bit-identically, so keyed merges
    // collapse the replays into the clean run's sample sequence.
    for (step, loss) in finished.losses {
        losses.insert(step, loss);
    }
    for (step, ppl) in finished.evals {
        evals.insert(step, ppl);
    }
    for (p, value) in model.params.iter_mut().zip(finished.model.params) {
        let old = std::mem::replace(&mut p.value, value.value);
        old.recycle();
    }
    for &m in &members {
        obs.emit(|| TraceEvent::ReplicaEvent {
            step: cfg.steps,
            replica: m,
            event: "finish".to_string(),
            replicas: members.len(),
        });
    }
    let wall_secs = started.elapsed().as_secs_f64();
    obs.emit(|| TraceEvent::RunEnd {
        step: cfg.steps,
        wall_secs,
    });
    if let Err(e) = obs.flush() {
        eprintln!("warning: trace flush failed ({e})");
    }
    DdpRunLog {
        log: RunLog {
            optimizer: opt_name,
            model: model.config().name.clone(),
            train_losses: losses.into_iter().collect(),
            eval_ppls: evals.into_iter().collect(),
            final_ppl: finished.final_ppl,
            state_elems: finished.footprint.0,
            state_bytes: finished.footprint.1,
            wall_secs,
            step_times_ms: Vec::new(),
            resilience: finished.report,
        },
        ddp: ddp_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_combine_is_a_fixed_pairwise_tree() {
        // Strings record the association: the tree must not depend on the
        // caller (only on the item count), and odd leftovers pass through.
        let combined = tree_combine(
            vec!["a".to_string(), "b".into(), "c".into(), "d".into()],
            |a, b| *a = format!("({a}+{b})"),
        );
        assert_eq!(combined, "((a+b)+(c+d))");
        let odd = tree_combine(vec!["a".to_string(), "b".into(), "c".into()], |a, b| {
            *a = format!("({a}+{b})")
        });
        assert_eq!(odd, "((a+b)+c)");
        assert_eq!(tree_combine(vec![7i64], |_, _| unreachable!()), 7);
    }

    #[test]
    fn slot_ranges_partition_exactly() {
        for n in 1..=4 {
            let total = 4;
            let mut covered = Vec::new();
            for pos in 0..n {
                covered.extend(slot_range(pos, n, total));
            }
            assert_eq!(covered, (0..total).collect::<Vec<_>>(), "n={n}");
        }
        // Uneven: 3 replicas over 4 slots.
        assert_eq!(slot_range(0, 3, 4), 0..1);
        assert_eq!(slot_range(1, 3, 4), 1..2);
        assert_eq!(slot_range(2, 3, 4), 2..4);
    }

    #[test]
    fn shard_ranges_cover_and_balance() {
        let elems = vec![100, 1, 1, 1, 100, 1, 50, 50];
        for shards in 1..=elems.len() {
            let ranges = shard_ranges(&elems, shards);
            assert_eq!(ranges.len(), shards);
            let mut covered = Vec::new();
            for r in &ranges {
                assert!(!r.is_empty(), "shards={shards}: empty shard {r:?}");
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..elems.len()).collect::<Vec<_>>());
        }
        // Balanced by elements, not count: the two heavy params split.
        let two = shard_ranges(&elems, 2);
        assert!(two[0].contains(&0) && !two[0].contains(&4));
    }

    #[test]
    fn opt_blobs_roundtrip_and_reject_corruption() {
        let blobs = vec![vec![1u8, 2, 3], Vec::new(), vec![9u8; 100]];
        let packed = pack_opt_blobs(&blobs);
        assert_eq!(unpack_opt_blobs(&packed).unwrap(), blobs);
        assert_eq!(
            unpack_opt_blobs(&pack_opt_blobs(&[])).unwrap(),
            Vec::<Vec<u8>>::new()
        );

        assert!(unpack_opt_blobs(b"garbage").is_err());
        // Truncated mid-blob.
        assert!(unpack_opt_blobs(&packed[..packed.len() - 1]).is_err());
        // Length prefix claiming more than remains must not allocate.
        let mut huge = packed.clone();
        let len_off = OPT_MAGIC.len() + 8;
        huge[len_off..len_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = unpack_opt_blobs(&huge).unwrap_err();
        assert!(err.contains("remain"), "{err}");
        // Trailing garbage.
        let mut trailing = packed;
        trailing.push(0);
        assert!(unpack_opt_blobs(&trailing).is_err());
    }

    #[test]
    fn poison_barrier_releases_waiters() {
        let barrier = PoisonBarrier::new(3);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| barrier.wait());
            let arriver = s.spawn(|| barrier.wait());
            // Give both a moment to block, then poison instead of arriving.
            std::thread::sleep(std::time::Duration::from_millis(20));
            barrier.poison();
            assert_eq!(waiter.join().unwrap(), Err(Poisoned));
            assert_eq!(arriver.join().unwrap(), Err(Poisoned));
        });
        assert_eq!(barrier.wait(), Err(Poisoned), "stays poisoned");
    }

    #[test]
    fn poison_barrier_synchronizes_generations() {
        let barrier = PoisonBarrier::new(2);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for round in 0..50 {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait().unwrap();
                        // Both must have bumped before anyone proceeds.
                        assert!(counter.load(Ordering::SeqCst) >= 2 * (round + 1));
                        barrier.wait().unwrap();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }
}
