//! The serializable outcome of a search run.
//!
//! Everything here is plain data with a deterministic `serde_json`
//! encoding — no wall-clock times, no hash-map iteration order — so two
//! runs with the same seed produce byte-identical frontier files. That
//! byte-equality is the determinism contract `scripts/ci.sh` checks with
//! `cmp`.

use serde::{Deserialize, Serialize};

use crate::genome::Genome;

/// One member's standing at a round boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberReport {
    /// Population slot.
    pub member: usize,
    /// The genome the member trained this round under.
    pub genome: Genome,
    /// Held-out perplexity at the round boundary.
    pub ppl: f32,
}

/// The population ranking at one round boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: usize,
    /// Global optimizer step at the boundary.
    pub step: usize,
    /// Best member's slot.
    pub best_member: usize,
    /// Best member's perplexity.
    pub best_ppl: f32,
    /// Every member, in slot order.
    pub members: Vec<MemberReport>,
}

/// One exploit/explore action: who cloned whom and what was perturbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageEvent {
    /// Round whose boundary triggered the action.
    pub round: usize,
    /// The replaced (bottom-quantile) member.
    pub member: usize,
    /// The leader whose train state was cloned.
    pub source: usize,
    /// The replaced member's perplexity before the clone.
    pub ppl_before: f32,
    /// Human-readable knob changes from the mutation.
    pub changes: Vec<String>,
    /// `"transplanted"` if the leader's optimizer state was kept verbatim,
    /// `"reset"` if a layout-changing mutation forced a fresh optimizer.
    pub optimizer_state: String,
}

/// A static-grid reference run trained with the same step budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Genome label.
    pub label: String,
    /// The static configuration.
    pub genome: Genome,
    /// Final held-out perplexity.
    pub ppl: f32,
}

/// The final winner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BestEntry {
    /// Winning member's slot.
    pub member: usize,
    /// Winning genome.
    pub genome: Genome,
    /// Final held-out perplexity.
    pub ppl: f32,
}

/// Complete record of a population-based search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierReport {
    /// Model name.
    pub model: String,
    /// Population size.
    pub population: usize,
    /// Exploit/explore rounds.
    pub rounds: usize,
    /// Steps per round.
    pub round_steps: usize,
    /// Bottom quantile replaced each round.
    pub quantile: f32,
    /// Master seed.
    pub seed: u64,
    /// Per-round rankings, oldest first.
    pub rounds_log: Vec<RoundReport>,
    /// Clone/perturb lineage, in the order the actions were taken.
    pub lineage: Vec<LineageEvent>,
    /// The final best configuration.
    pub best: BestEntry,
    /// Static fig4-grid reference runs (empty unless requested).
    pub baseline: Vec<BaselineEntry>,
}
