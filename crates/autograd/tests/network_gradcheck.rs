//! End-to-end gradient checks through composite networks (multiple op
//! kinds chained), exercising interactions the per-op unit tests cannot.

use apollo_autograd::Graph;
use apollo_tensor::{Matrix, Rng};

fn numeric_grad(mut f: impl FnMut(&Matrix) -> f32, param: &Matrix, eps: f32) -> Matrix {
    let mut g = Matrix::zeros(param.rows(), param.cols());
    for r in 0..param.rows() {
        for c in 0..param.cols() {
            let mut p = param.clone();
            p.set(r, c, param.get(r, c) + eps);
            let hi = f(&p);
            p.set(r, c, param.get(r, c) - eps);
            let lo = f(&p);
            g.set(r, c, (hi - lo) / (2.0 * eps));
        }
    }
    g
}

fn assert_close(analytic: &Matrix, numeric: &Matrix, tol: f32) {
    assert_eq!(analytic.shape(), numeric.shape());
    for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        let scale = 1.0 + a.abs().max(n.abs());
        assert!((a - n).abs() / scale < tol, "analytic {a} vs numeric {n}");
    }
}

/// A miniature transformer block: rmsnorm → attention (with RoPE) →
/// residual → rmsnorm → SwiGLU → residual → CE loss. Gradcheck every
/// parameter.
#[test]
fn transformer_block_gradcheck() {
    let (batch, seq, heads, hd) = (1usize, 4usize, 2usize, 4usize);
    let h = heads * hd; // 8
    let inter = 6;
    let vocab = 10;
    let mut rng = Rng::seed_from_u64(77);

    let x0 = Matrix::randn(batch * seq, h, &mut rng);
    let gains0 = Matrix::rand_uniform(1, h, 0.8, 1.2, &mut rng);
    let wq0 = Matrix::randn_scaled(h, h, 0.3, &mut rng);
    let wg0 = Matrix::randn_scaled(h, inter, 0.3, &mut rng);
    let wu0 = Matrix::randn_scaled(h, inter, 0.3, &mut rng);
    let wd0 = Matrix::randn_scaled(inter, h, 0.3, &mut rng);
    let head0 = Matrix::randn_scaled(h, vocab, 0.3, &mut rng);
    let targets = [1u32, 3, 5, 7];

    // params order: gains, wq, wg, wu, wd, head
    let forward = |gains: &Matrix,
                   wq: &Matrix,
                   wg: &Matrix,
                   wu: &Matrix,
                   wd: &Matrix,
                   head: &Matrix|
     -> (f32, Vec<Matrix>) {
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let gn = g.param(gains.clone());
        let q_w = g.param(wq.clone());
        let gate_w = g.param(wg.clone());
        let up_w = g.param(wu.clone());
        let down_w = g.param(wd.clone());
        let head_w = g.param(head.clone());

        let normed = g.rmsnorm(x, gn, 1e-5);
        let q0 = g.matmul(normed, q_w);
        let q = g.rope(q0, seq, heads, 1000.0);
        let att = g.causal_attention(q, q, normed, batch, seq, heads);
        let res1 = g.add(x, att);
        let gate_pre = g.matmul(res1, gate_w);
        let gate = g.silu(gate_pre);
        let up = g.matmul(res1, up_w);
        let act = g.mul(gate, up);
        let mlp = g.matmul(act, down_w);
        let res2 = g.add(res1, mlp);
        let logits = g.matmul(res2, head_w);
        let loss = g.cross_entropy(logits, &targets);
        let value = g.value(loss).get(0, 0);
        g.backward(loss);
        let grads = [gn, q_w, gate_w, up_w, down_w, head_w]
            .iter()
            .map(|&id| g.grad(id).clone())
            .collect();
        (value, grads)
    };

    let (_, grads) = forward(&gains0, &wq0, &wg0, &wu0, &wd0, &head0);
    let params: [&Matrix; 6] = [&gains0, &wq0, &wg0, &wu0, &wd0, &head0];
    for (i, p) in params.iter().enumerate() {
        let numeric = numeric_grad(
            |alt| {
                let mut ps: Vec<Matrix> = params.iter().map(|&m| m.clone()).collect();
                ps[i] = alt.clone();
                forward(&ps[0], &ps[1], &ps[2], &ps[3], &ps[4], &ps[5]).0
            },
            p,
            2e-2,
        );
        assert_close(&grads[i], &numeric, 5e-2);
    }
}

/// Shared-parameter networks accumulate gradients correctly: using the same
/// weight twice doubles its gradient contribution.
#[test]
fn weight_sharing_accumulates() {
    let mut rng = Rng::seed_from_u64(78);
    let x0 = Matrix::randn(2, 3, &mut rng);
    let w0 = Matrix::randn(3, 3, &mut rng);

    let run = |w: &Matrix, share: bool| -> (f32, Matrix) {
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let wa = g.param(w.clone());
        let y1 = g.matmul(x, wa);
        let y2 = if share {
            g.matmul(y1, wa)
        } else {
            let wb = g.param(w.clone());
            g.matmul(y1, wb)
        };
        let s = g.sum(y2);
        let v = g.value(s).get(0, 0);
        g.backward(s);
        (v, g.grad(wa).clone())
    };

    let (_, shared_grad) = run(&w0, true);
    let numeric = numeric_grad(|alt| run(alt, true).0, &w0, 1e-2);
    assert_close(&shared_grad, &numeric, 3e-2);
}

/// Very deep chains stay numerically stable (no NaN) and propagate.
#[test]
fn deep_chain_is_stable() {
    let mut rng = Rng::seed_from_u64(79);
    let mut g = Graph::new();
    let x = g.param(Matrix::randn(4, 4, &mut rng));
    let gains = g.input(Matrix::full(1, 4, 1.0));
    let mut cur = x;
    for _ in 0..40 {
        cur = g.rmsnorm(cur, gains, 1e-5);
        cur = g.silu(cur);
    }
    let s = g.sum(cur);
    g.backward(s);
    assert!(g.grad(x).all_finite());
    assert!(g.grad(x).fro_norm() > 0.0);
}
