//! Resilient HTTP serving front-end over the continuous-batching
//! [`Server`].
//!
//! One acceptor thread hands each connection to a detached handler
//! thread; handlers speak the [`crate::net`] wire protocol with
//! keep-alive. The endpoints:
//!
//! - `GET /healthz` — JSON snapshot: `vocab_size`, `kv_capacity`,
//!   `in_flight`, `draining`, `adapters` (registered names). Load
//!   generators read their token range, prompt bound, and adapter pool
//!   from here.
//! - `GET /stats` — serving counters: prefix-cache hit rate, resident
//!   and evicted adapters, KV bytes in use, in-flight requests (see
//!   [`crate::ServeStats`]).
//! - `POST /generate` — JSON body `{prompt: [u32], adapter?,
//!   max_new_tokens?, deadline_ms?, temperature?, top_k?, top_p?, seed?,
//!   stop_token?, stream?}`. `adapter` names a registered LoRA adapter
//!   (unknown names get 400). Non-streaming returns one JSON object;
//!   `stream: true` returns chunked NDJSON — one `{"token": n}` line per
//!   sampled token, then a final `{"done": ...}` line.
//!
//! Admission control maps [`SubmitError`] onto status codes — 429
//! (`Retry-After`) for queue-full, 413 for prompt-too-long, 400 for
//! empty/malformed — with a **shed watermark** below the hard queue
//! bound: once `in_flight` reaches it, new generate requests are shed
//! with 429 *before* touching the server, keeping headroom so queued
//! work still meets deadlines. During drain, generate returns 503.
//!
//! Every client failure mode feeds a counter (`serve.*`) and a
//! [`TraceEvent::ServeRequest`]; a mid-stream disconnect cancels the
//! in-flight request via [`GenHandle`] drop so no scheduler slot leaks.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use apollo_nn::{AdapterRegistry, DecodeBackend};
use apollo_obs::{Obs, TraceEvent};
use serde::Value;

use crate::net::{self, ChunkedWriter, HttpError, HttpLimits, Request};
use crate::scheduler::{GenRequest, SchedConfig, SubmitError};
use crate::server::{GenEvent, GenHandle, Server, WaitError};
use crate::GenConfig;

/// Front-end configuration (the scheduler has its own [`SchedConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Per-connection wire-protocol limits.
    pub limits: HttpLimits,
    /// Shed generate requests with 429 once `in_flight` reaches this.
    /// Keep it below the scheduler's `queue_cap` so shedding (cheap,
    /// early) engages before hard queue-full (late, after parsing).
    pub shed_watermark: usize,
    /// Deadline applied when a request does not send `deadline_ms`.
    pub default_deadline: Duration,
    /// Upper bound on client-requested deadlines.
    pub max_deadline: Duration,
    /// How long [`Frontend::shutdown`] waits for in-flight requests.
    pub drain_deadline: Duration,
    /// Seconds advertised in `Retry-After` on 429/503.
    pub retry_after_secs: u64,
    /// Upper bound on client-requested `max_new_tokens`.
    pub max_new_tokens_cap: usize,
    /// Extra wall time past a request's deadline before the front-end
    /// gives up waiting (408) — covers scheduler tick granularity.
    pub wait_slack: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            limits: HttpLimits::default(),
            shed_watermark: 48,
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            drain_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            max_new_tokens_cap: 256,
            wait_slack: Duration::from_secs(10),
        }
    }
}

/// What [`Frontend::shutdown`] observed while draining.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// In-flight requests when drain began.
    pub in_flight_at_drain: usize,
    /// Requests that retired within the drain deadline.
    pub drained: usize,
    /// Requests still running when the deadline passed (they finish in
    /// the background; the count records the SLO miss).
    pub forced: usize,
    /// Wall time spent draining.
    pub wall_ms: f32,
}

struct Inner {
    server: Server,
    obs: Obs,
    cfg: ServeConfig,
    vocab_size: usize,
    /// Serve-request sequence number, used as the trace `step`.
    requests: AtomicUsize,
    /// Open connections (acceptor + handlers keep this honest).
    conns: AtomicUsize,
}

/// A listening serving front-end. [`Frontend::shutdown`] drains
/// gracefully; dropping without shutdown stops accepting and drains with
/// the same deadline.
pub struct Frontend {
    inner: Arc<Inner>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Frontend {
    /// Binds `cfg.addr`, starts the generation [`Server`], and spawns the
    /// acceptor thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(
        model: impl Into<DecodeBackend>,
        sched: SchedConfig,
        cfg: ServeConfig,
        obs: Obs,
    ) -> io::Result<Frontend> {
        Self::start_multi(model, sched, cfg, obs, Arc::new(AdapterRegistry::empty()))
    }

    /// [`Frontend::start`] with multi-tenant adapter routing: generate
    /// requests may name any adapter in `registry` (resolved to its dense
    /// id here; unknown names get 400 before touching the scheduler).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics on a non-empty registry over an INT8 backend.
    pub fn start_multi(
        model: impl Into<DecodeBackend>,
        sched: SchedConfig,
        cfg: ServeConfig,
        obs: Obs,
        registry: Arc<AdapterRegistry>,
    ) -> io::Result<Frontend> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let model = model.into();
        let vocab_size = model.config().vocab_size;
        let server = Server::start_multi(model, sched, obs.clone(), registry);
        let inner = Arc::new(Inner {
            server,
            obs,
            cfg,
            vocab_size,
            requests: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("apollo-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &inner, &stop))
                .expect("spawn acceptor thread")
        };
        Ok(Frontend {
            inner,
            stop,
            acceptor: Some(acceptor),
            addr,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// In-flight generation requests (accepted, not yet retired).
    pub fn in_flight(&self) -> usize {
        self.inner.server.in_flight()
    }

    /// The shared serving counters — the same numbers `GET /stats`
    /// renders, for in-process callers (the bench harness).
    pub fn stats(&self) -> Arc<crate::ServeStats> {
        Arc::clone(self.inner.server.stats())
    }

    /// Graceful drain: stop accepting connections, reject new generate
    /// requests with 503, wait up to `drain_deadline` for in-flight work,
    /// and report what drained versus what was still running.
    pub fn shutdown(mut self) -> DrainReport {
        self.drain()
    }

    fn drain(&mut self) -> DrainReport {
        let t0 = Instant::now();
        self.inner.server.begin_drain();
        self.stop.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let in_flight_at_drain = self.inner.server.in_flight();
        let deadline = t0 + self.inner.cfg.drain_deadline;
        while self.inner.server.in_flight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let forced = self.inner.server.in_flight();
        let drained = in_flight_at_drain - forced;
        // Give keep-alive handlers (parked in idle reads, bounded by
        // idle_timeout) a chance to notice the drain and close.
        let conn_grace = Instant::now() + self.inner.cfg.limits.idle_timeout;
        while self.inner.conns.load(Ordering::Relaxed) > 0 && Instant::now() < conn_grace {
            std::thread::sleep(Duration::from_millis(2));
        }
        let wall_ms = t0.elapsed().as_secs_f32() * 1e3;
        let report = DrainReport {
            in_flight_at_drain,
            drained,
            forced,
            wall_ms,
        };
        let obs = &self.inner.obs;
        obs.counter("serve.drained", drained as u64);
        let step = self.inner.requests.load(Ordering::Relaxed);
        obs.emit(|| TraceEvent::ServeDrain {
            step,
            in_flight: in_flight_at_drain,
            drained,
            forced,
            wall_ms,
        });
        report
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.drain();
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue; // peer already gone
                }
                let _ = stream.set_nodelay(true);
                inner.conns.fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(inner);
                let spawned = std::thread::Builder::new()
                    .name("apollo-serve-conn".to_string())
                    .spawn(move || {
                        handle_conn(&conn_inner, stream);
                        conn_inner.conns.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    inner.conns.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// One keep-alive session: read requests until the peer closes, errors,
/// asks to close, or the server starts draining.
fn handle_conn(inner: &Arc<Inner>, mut stream: TcpStream) {
    loop {
        match net::read_request(&mut stream, &inner.cfg.limits) {
            Ok(Some(req)) => {
                let close = handle_request(inner, &mut stream, &req);
                if close || inner.server.is_draining() {
                    break;
                }
            }
            Ok(None) | Err(HttpError::IdleTimeout) => break, // quiet keep-alive end
            Err(HttpError::DeadlineExceeded) => {
                // Slow-loris: the head never completed. Best-effort 408.
                record(inner, 408, "slow_loris", Instant::now());
                inner.obs.counter("serve.timed_out", 1);
                let _ = net::write_response(&mut stream, 408, &[], b"{\"error\":\"timeout\"}");
                break;
            }
            Err(HttpError::Truncated) | Err(HttpError::Io(_)) => {
                inner.obs.counter("serve.disconnected", 1);
                break;
            }
            Err(HttpError::TooLarge) => {
                record(inner, 413, "malformed", Instant::now());
                inner.obs.counter("serve.malformed", 1);
                let _ = net::write_response(&mut stream, 413, &[], b"{\"error\":\"too large\"}");
                break;
            }
            Err(HttpError::Malformed(why)) => {
                record(inner, 400, "malformed", Instant::now());
                inner.obs.counter("serve.malformed", 1);
                let body = format!("{{\"error\":{}}}", json_str(why));
                let _ = net::write_response(&mut stream, 400, &[], body.as_bytes());
                break;
            }
        }
    }
}

/// Dispatches one parsed request; returns whether to close the connection.
fn handle_request(inner: &Arc<Inner>, stream: &mut TcpStream, req: &Request) -> bool {
    let t0 = Instant::now();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let names: Vec<String> = inner
                .server
                .registry()
                .names()
                .iter()
                .map(|n| json_str(n))
                .collect();
            let body = format!(
                "{{\"vocab_size\":{},\"kv_capacity\":{},\"in_flight\":{},\"draining\":{},\"adapters\":[{}]}}",
                inner.vocab_size,
                inner.server.kv_capacity(),
                inner.server.in_flight(),
                inner.server.is_draining(),
                names.join(",")
            );
            let _ = net::write_response(stream, 200, &[], body.as_bytes());
            req.wants_close()
        }
        ("GET", "/stats") => {
            let body = stats_json(inner);
            let _ = net::write_response(stream, 200, &[], body.as_bytes());
            req.wants_close()
        }
        ("POST", "/generate") => handle_generate(inner, stream, req, t0),
        (_, "/healthz") | (_, "/generate") | (_, "/stats") => {
            record(inner, 405, "malformed", t0);
            let _ = net::write_response(stream, 405, &[], b"{\"error\":\"method not allowed\"}");
            req.wants_close()
        }
        _ => {
            record(inner, 404, "malformed", t0);
            let _ = net::write_response(stream, 404, &[], b"{\"error\":\"not found\"}");
            req.wants_close()
        }
    }
}

/// The generate endpoint: admission control, submission, then either a
/// buffered or a streamed response. Returns whether to close.
fn handle_generate(inner: &Arc<Inner>, stream: &mut TcpStream, req: &Request, t0: Instant) -> bool {
    let cfg = &inner.cfg;
    let retry = [("Retry-After", cfg.retry_after_secs.to_string())];
    if inner.server.is_draining() {
        record(inner, 503, "draining", t0);
        inner.obs.counter("serve.shed", 1);
        let _ = net::write_response(stream, 503, &retry, b"{\"error\":\"draining\"}");
        return true;
    }
    let parsed = match parse_generate_body(&req.body, cfg) {
        Ok(p) => p,
        Err(why) => {
            record(inner, 400, "malformed", t0);
            inner.obs.counter("serve.malformed", 1);
            let body = format!("{{\"error\":{}}}", json_str(&why));
            let _ = net::write_response(stream, 400, &[], body.as_bytes());
            return req.wants_close();
        }
    };
    // Resolve the adapter name against the registry before submission so
    // unknown tenants fail fast (and cheap) with the name echoed back.
    let adapter = match &parsed.adapter {
        None => None,
        Some(name) => match inner.server.registry().id(name) {
            Some(id) => Some(id),
            None => {
                record(inner, 400, "unknown_adapter", t0);
                inner.obs.counter("serve.unknown_adapter", 1);
                let body = format!(
                    "{{\"error\":\"unknown adapter\",\"adapter\":{}}}",
                    json_str(name)
                );
                let _ = net::write_response(stream, 400, &[], body.as_bytes());
                return req.wants_close();
            }
        },
    };
    // Load shedding: reject early while the hard queue bound still has
    // headroom, so already-accepted work keeps meeting its deadlines.
    if inner.server.in_flight() >= cfg.shed_watermark {
        record(inner, 429, "shed", t0);
        inner.obs.counter("serve.shed", 1);
        let _ = net::write_response(stream, 429, &retry, b"{\"error\":\"shedding load\"}");
        return req.wants_close();
    }
    let deadline = parsed.deadline;
    let stream_mode = parsed.stream;
    let handle = match inner.server.submit(parsed.into_request(adapter)) {
        Ok(h) => h,
        Err(SubmitError::QueueFull) => {
            record(inner, 429, "rejected", t0);
            let _ = net::write_response(stream, 429, &retry, b"{\"error\":\"queue full\"}");
            return req.wants_close();
        }
        Err(SubmitError::PromptTooLong) => {
            record(inner, 413, "rejected", t0);
            let _ = net::write_response(stream, 413, &[], b"{\"error\":\"prompt too long\"}");
            return req.wants_close();
        }
        Err(SubmitError::EmptyPrompt) => {
            record(inner, 400, "rejected", t0);
            let _ = net::write_response(stream, 400, &[], b"{\"error\":\"empty prompt\"}");
            return req.wants_close();
        }
        Err(SubmitError::UnknownAdapter) => {
            // Unreachable after name resolution above; kept for the id path.
            record(inner, 400, "unknown_adapter", t0);
            let _ = net::write_response(stream, 400, &[], b"{\"error\":\"unknown adapter\"}");
            return req.wants_close();
        }
    };
    inner.obs.counter("serve.accepted", 1);
    let wait_budget = deadline + cfg.wait_slack;
    if stream_mode {
        stream_generate(inner, stream, handle, wait_budget, t0) || req.wants_close()
    } else {
        buffered_generate(inner, stream, handle, wait_budget, t0);
        req.wants_close()
    }
}

/// Waits for the final result and writes one JSON object.
fn buffered_generate(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    mut handle: GenHandle,
    wait_budget: Duration,
    t0: Instant,
) {
    match handle.wait_timeout(wait_budget) {
        Ok(res) => {
            let outcome = res.outcome.label();
            record(inner, 200, outcome, t0);
            let body = format!(
                "{{\"id\":{},\"outcome\":{},\"tokens\":{}}}",
                res.id,
                json_str(outcome),
                json_u32s(&res.tokens)
            );
            let _ = net::write_response(stream, 200, &[], body.as_bytes());
        }
        Err(WaitError::TimedOut) => {
            // The scheduler's own deadline should retire first; this fires
            // only if the worker is wedged. Dropping `handle` cancels.
            record(inner, 408, "timed_out", t0);
            inner.obs.counter("serve.timed_out", 1);
            let _ = net::write_response(stream, 408, &[], b"{\"error\":\"timeout\"}");
        }
        Err(WaitError::ServerGone) => {
            record(inner, 503, "draining", t0);
            let _ = net::write_response(stream, 503, &[], b"{\"error\":\"server stopped\"}");
        }
    }
}

/// Streams tokens as chunked NDJSON. Returns `true` when the connection
/// must close (disconnect mid-stream).
fn stream_generate(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    mut handle: GenHandle,
    wait_budget: Duration,
    t0: Instant,
) -> bool {
    let mut writer = match ChunkedWriter::start(stream, 200, &[]) {
        Ok(w) => w,
        Err(_) => {
            // Disconnected before the head: drop `handle` to cancel.
            record(inner, 200, "disconnected", t0);
            inner.obs.counter("serve.disconnected", 1);
            return true;
        }
    };
    let give_up = Instant::now() + wait_budget;
    loop {
        let left = give_up.saturating_duration_since(Instant::now());
        match handle.next_event(left) {
            Ok(GenEvent::Token(tok)) => {
                let line = format!("{{\"token\":{tok}}}\n");
                if writer.chunk(line.as_bytes()).is_err() {
                    // Client went away mid-stream: dropping `handle`
                    // cancels the request and frees its slot.
                    record(inner, 200, "disconnected", t0);
                    inner.obs.counter("serve.disconnected", 1);
                    return true;
                }
            }
            Ok(GenEvent::Finished(res)) => {
                let outcome = res.outcome.label();
                record(inner, 200, outcome, t0);
                let line = format!(
                    "{{\"done\":true,\"id\":{},\"outcome\":{},\"tokens\":{}}}\n",
                    res.id,
                    json_str(outcome),
                    json_u32s(&res.tokens)
                );
                let closed = writer.chunk(line.as_bytes()).is_err() || writer.finish().is_err();
                if closed {
                    inner.obs.counter("serve.disconnected", 1);
                }
                return closed;
            }
            Err(WaitError::TimedOut) => {
                record(inner, 408, "timed_out", t0);
                inner.obs.counter("serve.timed_out", 1);
                let _ = writer.chunk(b"{\"error\":\"timeout\"}\n");
                let _ = writer.finish();
                return true;
            }
            Err(WaitError::ServerGone) => {
                record(inner, 503, "draining", t0);
                let _ = writer.chunk(b"{\"error\":\"server stopped\"}\n");
                let _ = writer.finish();
                return true;
            }
        }
    }
}

/// A validated generate request body.
struct ParsedGenerate {
    prompt: Vec<u32>,
    cfg: GenConfig,
    deadline: Duration,
    stream: bool,
    /// Adapter *name* from the body; resolved to an id at dispatch.
    adapter: Option<String>,
}

impl ParsedGenerate {
    fn into_request(self, adapter: Option<u32>) -> GenRequest {
        GenRequest {
            prompt: self.prompt,
            cfg: self.cfg,
            deadline: Some(self.deadline),
            adapter,
        }
    }
}

/// Lenient body parsing: `prompt` is required; everything else defaults.
/// Client-supplied knobs are clamped to the server's caps rather than
/// rejected, so a misconfigured client degrades instead of failing.
fn parse_generate_body(body: &[u8], cfg: &ServeConfig) -> Result<ParsedGenerate, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let value: Value = serde_json::from_str(text).map_err(|e| format!("bad json: {e}"))?;
    let prompt_val = value
        .get_field("prompt")
        .map_err(|_| "missing field `prompt`".to_string())?;
    let Value::Arr(items) = prompt_val else {
        return Err("`prompt` must be an array of token ids".to_string());
    };
    let mut prompt = Vec::with_capacity(items.len());
    for item in items {
        let tok = as_u64(item)
            .ok_or_else(|| "`prompt` must contain non-negative integers".to_string())?;
        let tok = u32::try_from(tok).map_err(|_| "`prompt` token exceeds u32".to_string())?;
        prompt.push(tok);
    }
    let mut gen = GenConfig {
        max_new_tokens: cfg.max_new_tokens_cap.min(32),
        ..GenConfig::default()
    };
    if let Some(n) = field_u64(&value, "max_new_tokens") {
        gen.max_new_tokens = (n as usize).clamp(1, cfg.max_new_tokens_cap);
    }
    if let Some(t) = field_f64(&value, "temperature") {
        gen.temperature = t as f32;
    }
    if let Some(k) = field_u64(&value, "top_k") {
        gen.top_k = k as usize;
    }
    if let Some(p) = field_f64(&value, "top_p") {
        gen.top_p = p as f32;
    }
    if let Some(s) = field_u64(&value, "seed") {
        gen.seed = s;
    }
    if let Some(s) = field_u64(&value, "stop_token") {
        gen.stop_token = u32::try_from(s).ok();
    }
    let deadline = match field_u64(&value, "deadline_ms") {
        Some(ms) => Duration::from_millis(ms).min(cfg.max_deadline),
        None => cfg.default_deadline,
    };
    let stream = matches!(value.get_field("stream"), Ok(Value::Bool(true)));
    let adapter = match value.get_field("adapter") {
        Ok(Value::Str(name)) => Some(name.clone()),
        Ok(Value::Null) | Err(_) => None,
        Ok(_) => return Err("`adapter` must be a string".to_string()),
    };
    Ok(ParsedGenerate {
        prompt,
        cfg: gen,
        deadline,
        stream,
        adapter,
    })
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Num(n) => n.as_u64(),
        _ => None,
    }
}

fn field_u64(v: &Value, name: &str) -> Option<u64> {
    v.get_field(name).ok().and_then(as_u64)
}

fn field_f64(v: &Value, name: &str) -> Option<f64> {
    match v.get_field(name).ok()? {
        Value::Num(n) => Some(n.as_f64()),
        _ => None,
    }
}

/// Renders the `GET /stats` snapshot: prefix-cache effectiveness, adapter
/// residency, KV pressure, and front-end load, all from relaxed reads of
/// the shared [`crate::ServeStats`] atomics.
fn stats_json(inner: &Arc<Inner>) -> String {
    let s = inner.server.stats();
    let load = |f: &std::sync::atomic::AtomicU64| f.load(Ordering::Relaxed);
    let prefill_tokens = load(&s.prefill_tokens);
    let hit_tokens = load(&s.prefix_hit_tokens);
    let prefill_us = load(&s.prefill_us);
    // Effective prefill throughput: cached tokens count as served work
    // the cache saved us from recomputing.
    let effective_tok_per_sec = if prefill_us == 0 {
        0.0
    } else {
        (prefill_tokens + hit_tokens) as f64 / (prefill_us as f64 / 1e6)
    };
    format!(
        concat!(
            "{{\"prefix_cache\":{{",
            "\"lookups\":{},\"hits\":{},\"hit_rate\":{:.6},\"hit_tokens\":{},",
            "\"cached_bytes\":{},\"nodes\":{},\"evictions\":{}}},",
            "\"adapters\":{{\"registered\":{},\"resident\":{},\"loads\":{},\"evictions\":{}}},",
            "\"kv_used_bytes\":{},\"prefill_tokens\":{},\"decode_tokens\":{},",
            "\"effective_prefill_tok_per_sec\":{:.3},",
            "\"in_flight\":{},\"draining\":{}}}"
        ),
        load(&s.prefix_lookups),
        load(&s.prefix_hits),
        s.hit_rate(),
        hit_tokens,
        load(&s.prefix_cached_bytes),
        load(&s.prefix_nodes),
        load(&s.prefix_evictions),
        load(&s.adapters_registered),
        load(&s.adapters_resident),
        load(&s.adapter_loads),
        load(&s.adapter_evictions),
        load(&s.kv_used_bytes),
        prefill_tokens,
        load(&s.decode_tokens),
        effective_tok_per_sec,
        inner.server.in_flight(),
        inner.server.is_draining(),
    )
}

/// JSON string literal with minimal escaping (labels are ASCII).
fn json_str(s: &str) -> String {
    let escaped: String = s
        .chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    format!("\"{escaped}\"")
}

fn json_u32s(tokens: &[u32]) -> String {
    let mut out = String::with_capacity(2 + tokens.len() * 4);
    out.push('[');
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_string());
    }
    out.push(']');
    out
}

/// Counts and traces one served request's disposition.
fn record(inner: &Arc<Inner>, status: u16, outcome: &str, t0: Instant) {
    let step = inner.requests.fetch_add(1, Ordering::Relaxed);
    let latency_ms = t0.elapsed().as_secs_f32() * 1e3;
    let in_flight = inner.server.in_flight();
    let outcome = outcome.to_string();
    inner.obs.emit(move || TraceEvent::ServeRequest {
        step,
        status,
        latency_ms,
        outcome,
        in_flight,
    });
}
