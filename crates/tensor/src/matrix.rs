//! The dense row-major `f32` matrix type.

use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` matrix.
///
/// This is the single numeric container of the reproduction: model weights,
/// gradients, optimizer moments, and projection matrices are all `Matrix`
/// values. Vectors are represented as `1 × n` or `n × 1` matrices.
///
/// # Example
///
/// ```
/// use apollo_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b.get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros, reusing pooled scratch storage
    /// when available (see [`crate::scratch`]).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: crate::scratch::take_zeroed(rows * cols),
        }
    }

    /// Consumes the matrix and returns its storage to the scratch pool so
    /// the next [`Matrix::zeros`] of a similar size reuses it.
    pub fn recycle(self) {
        crate::scratch::recycle(self.data);
    }

    /// Reshapes `self` to `src`'s shape and copies its contents, reusing
    /// the existing storage (no allocation when capacity suffices).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Reshapes `self` to `rows × cols`, zero-filled, reusing the existing
    /// storage (no allocation when capacity suffices). The output-buffer
    /// counterpart of [`Matrix::copy_from`] for the fused kernels, which
    /// overwrite every element and only need the shape set up.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Creates a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: got {} elements for a {rows}x{cols} matrix",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix with i.i.d. standard-normal entries.
    pub fn randn(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gauss();
        }
        m
    }

    /// Creates a matrix with i.i.d. normal entries of the given std-dev.
    ///
    /// This is the generator used for APOLLO's projection matrices
    /// (`P ~ N(0, 1/r)`, i.e. `std = sqrt(1/r)`) and for weight init.
    pub fn randn_scaled(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gauss() * std;
        }
        m
    }

    /// Creates a matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.uniform_in(lo, hi);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major data, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrows row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Returns a new matrix of the rows `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > rows`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(
            lo <= hi && hi <= self.rows,
            "slice_rows: bad range {lo}..{hi}"
        );
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Returns a new matrix holding the given rows of `self`, in index
    /// order (duplicates allowed). The low-rank adapter path uses this to
    /// gather one tenant's rows out of a mixed batch; row-copying keeps
    /// every downstream kernel bit-identical to running that subset alone.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// In-place `self.row(idx[i]) += src.row(i)` for every `i` — the
    /// scatter half of [`Matrix::gather_rows`]. Element order within each
    /// row matches [`Matrix::add_assign`], so a gather → compute →
    /// scatter-add round trip is bit-identical to computing on the full
    /// matrix and adding.
    ///
    /// # Panics
    ///
    /// Panics if `src` has a different column count, `idx` and `src`
    /// disagree on length, or any index is out of bounds.
    pub fn scatter_add_rows(&mut self, idx: &[usize], src: &Matrix) {
        assert_eq!(self.cols, src.cols, "scatter_add_rows: column mismatch");
        assert_eq!(idx.len(), src.rows, "scatter_add_rows: row mismatch");
        for (i, &r) in idx.iter().enumerate() {
            for (a, b) in self.row_mut(r).iter_mut().zip(src.row(i)) {
                *a += b;
            }
        }
    }

    /// Returns a new matrix of the columns `lo..hi`.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Matrix {
        assert!(
            lo <= hi && hi <= self.cols,
            "slice_cols: bad range {lo}..{hi}"
        );
        let mut out = Matrix::zeros(self.rows, hi - lo);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[lo..hi]);
        }
        out
    }

    // ----- elementwise arithmetic -------------------------------------------------

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise sum, returning a new matrix.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference, returning a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "hadamard");
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "sub_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        self.assert_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place exponential moving average: `self = beta*self + (1-beta)*other`.
    ///
    /// This is the first/second-moment update of Adam-family optimizers.
    pub fn ema_assign(&mut self, beta: f32, other: &Matrix) {
        self.assert_same_shape(other, "ema_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = beta * *a + (1.0 - beta) * b;
        }
    }

    /// In-place EMA of the elementwise square: `self = beta*self + (1-beta)*other²`.
    pub fn ema_square_assign(&mut self, beta: f32, other: &Matrix) {
        self.assert_same_shape(other, "ema_square_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = beta * *a + (1.0 - beta) * b * b;
        }
    }

    /// Scalar multiply, returning a new matrix.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|x| alpha * x)
    }

    /// In-place scalar multiply.
    pub fn scale_assign(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Applies `f` elementwise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Overwrites `self` (reshaping to match) with `f(a[i], b[i])`
    /// elementwise. The allocation-free counterpart of [`Matrix::zip_map`]
    /// for scratch buffers reused across steps.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in shape.
    pub fn zip_map_from(&mut self, a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32) {
        a.assert_same_shape(b, "zip_map_from");
        self.rows = a.rows;
        self.cols = a.cols;
        self.data.clear();
        self.data
            .extend(a.data.iter().zip(&b.data).map(|(&x, &y)| f(x, y)));
    }

    /// Combines two same-shape matrices elementwise.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Scales column `c` by `alpha` in place.
    pub fn scale_col(&mut self, c: usize, alpha: f32) {
        for r in 0..self.rows {
            self.data[r * self.cols + c] *= alpha;
        }
    }

    /// Multiplies each column by the corresponding entry of `s`
    /// (`self ← self · diag(s)` — APOLLO's channel-wise gradient scaling).
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != cols`.
    pub fn scale_cols(&mut self, s: &[f32]) {
        assert_eq!(s.len(), self.cols, "scale_cols: need one factor per column");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &f) in row.iter_mut().zip(s) {
                *v *= f;
            }
        }
    }

    /// Multiplies each row by the corresponding entry of `s`
    /// (`self ← diag(s) · self`).
    pub fn scale_rows(&mut self, s: &[f32]) {
        assert_eq!(s.len(), self.rows, "scale_rows: need one factor per row");
        for (r, &f) in s.iter().enumerate() {
            for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
                *v *= f;
            }
        }
    }

    // ----- reductions -------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm (`ℓ₂` norm of the flattened matrix).
    pub fn fro_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// `ℓ₂` norm of each column (length-`cols` vector).
    ///
    /// This is the per-channel norm `‖G[:, j]‖₂` of Eq. 3 / Eq. 5.
    pub fn col_norms(&self) -> Vec<f32> {
        let mut acc = vec![0.0f64; self.cols];
        for r in 0..self.rows {
            for (a, &v) in acc.iter_mut().zip(self.row(r)) {
                *a += (v as f64) * (v as f64);
            }
        }
        acc.into_iter().map(|a| a.sqrt() as f32).collect()
    }

    /// `ℓ₂` norm of each row (length-`rows` vector).
    pub fn row_norms(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>()
                    .sqrt() as f32
            })
            .collect()
    }

    /// `ℓ₁` norm of each column.
    pub fn col_abs_sums(&self) -> Vec<f32> {
        let mut acc = vec![0.0f64; self.cols];
        for r in 0..self.rows {
            for (a, &v) in acc.iter_mut().zip(self.row(r)) {
                *a += v.abs() as f64;
            }
        }
        acc.into_iter().map(|a| a as f32).collect()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Returns true if every element is finite.
    pub fn all_finite(&self) -> bool {
        !self.has_non_finite()
    }

    /// Returns true if any element is NaN or ±Inf.
    ///
    /// This is the step sentinel's hot path: it runs on every gradient
    /// every step, so it is written as a branchless bitwise scan (a float
    /// is non-finite iff its exponent bits are all ones, i.e. its
    /// magnitude bits are ≥ `0x7F80_0000`) that reduces each chunk with
    /// `max` — LLVM turns this into vector `umax` — and compares once per
    /// chunk instead of once per element.
    pub fn has_non_finite(&self) -> bool {
        const EXP_MASK: u32 = 0x7F80_0000;
        const ABS_MASK: u32 = 0x7FFF_FFFF;
        let mut chunks = self.data.chunks_exact(32);
        for chunk in &mut chunks {
            let mut worst = 0u32;
            for &x in chunk {
                worst = worst.max(x.to_bits() & ABS_MASK);
            }
            if worst >= EXP_MASK {
                return true;
            }
        }
        chunks.remainder().iter().any(|x| !x.is_finite())
    }

    // ----- matmul front-ends (kernels live in `matmul.rs`) -------------------------

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        crate::matmul::matmul(self, other)
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        crate::matmul::matmul_transb(self, other)
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    pub fn matmul_transa(&self, other: &Matrix) -> Matrix {
        crate::matmul::matmul_transa(self, other)
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn gather_then_scatter_add_matches_full_add() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = x.gather_rows(&[2, 0]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
        let mut out = Matrix::zeros(3, 2);
        out.scatter_add_rows(&[2, 0], &g);
        assert_eq!(out.row(0), &[1.0, 2.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = Matrix::identity(3);
        assert_eq!(i.sum(), 3.0);
        assert_eq!(i.get(2, 2), 1.0);
        assert_eq!(i.get(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_wrong_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = Rng::seed_from_u64(1);
        let m = Matrix::randn(5, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        assert_eq!(a.add(&b).get(1, 1), 44.0);
        assert_eq!(b.sub(&a).get(0, 0), 9.0);
        assert_eq!(a.hadamard(&b).get(0, 1), 40.0);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.get(0, 0), 21.0);
    }

    #[test]
    fn ema_matches_adam_moment_update() {
        let mut m = Matrix::full(1, 2, 1.0);
        let g = Matrix::from_rows(&[&[3.0, -1.0]]);
        m.ema_assign(0.9, &g);
        assert!((m.get(0, 0) - (0.9 + 0.1 * 3.0)).abs() < 1e-6);
        let mut v = Matrix::full(1, 2, 1.0);
        v.ema_square_assign(0.99, &g);
        assert!((v.get(0, 0) - (0.99 + 0.01 * 9.0)).abs() < 1e-6);
    }

    #[test]
    fn col_norms_match_manual() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 2.0]]);
        let n = m.col_norms();
        assert!((n[0] - 5.0).abs() < 1e-6);
        assert!((n[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn row_norms_match_manual() {
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 2.0]]);
        let n = m.row_norms();
        assert!((n[0] - 5.0).abs() < 1e-6);
        assert!((n[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fro_norm_matches_flat_l2() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn scale_cols_applies_diag_right_multiply() {
        let mut m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        m.scale_cols(&[2.0, 3.0]);
        assert_eq!(m, Matrix::from_rows(&[&[2.0, 3.0], &[2.0, 3.0]]));
    }

    #[test]
    fn scale_rows_applies_diag_left_multiply() {
        let mut m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        m.scale_rows(&[2.0, 3.0]);
        assert_eq!(m, Matrix::from_rows(&[&[2.0, 2.0], &[3.0, 3.0]]));
    }

    #[test]
    fn slicing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        assert_eq!(m.slice_rows(1, 3).row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(m.slice_cols(1, 2).col(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn randn_scaled_variance() {
        let mut rng = Rng::seed_from_u64(11);
        let r = 64;
        let p = Matrix::randn_scaled(r, 1000, (1.0 / r as f32).sqrt(), &mut rng);
        let var = p.as_slice().iter().map(|&x| x * x).sum::<f32>() / p.len() as f32;
        assert!((var - 1.0 / r as f32).abs() < 0.002, "var {var}");
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        m.set(0, 1, f32::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn has_non_finite_catches_every_position_and_kind() {
        // 7x11 = 77 elements: exercises both the 32-wide chunked path and
        // the remainder path, at every index.
        for kind in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            for idx in 0..77 {
                let mut m = Matrix::zeros(7, 11);
                assert!(!m.has_non_finite());
                m.as_mut_slice()[idx] = kind;
                assert!(m.has_non_finite(), "missed {kind} at {idx}");
            }
        }
        // Large finite magnitudes must not trip the exponent test.
        let mut m = Matrix::zeros(7, 11);
        m.as_mut_slice().fill(f32::MAX);
        m.as_mut_slice()[3] = f32::MIN;
        assert!(!m.has_non_finite());
    }
}
