//! Thin Householder QR decomposition.

use crate::Matrix;

/// Computes the thin QR decomposition `a = q · r` for an `m × n` matrix with
/// `m ≥ n`, returning `(q, r)` with `q: m × n` (orthonormal columns) and
/// `r: n × n` (upper triangular).
///
/// Used by the randomized SVD's range finder.
///
/// # Panics
///
/// Panics if `a.rows() < a.cols()`.
pub fn qr_thin(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    assert!(m >= n, "qr_thin: requires rows >= cols, got {m}x{n}");

    // Work in f64 internally: Householder QR is numerically delicate in f32
    // when columns are nearly dependent (exactly the regime of low-rank
    // gradient sketches).
    let mut r: Vec<f64> = a.as_slice().iter().map(|&x| x as f64).collect();
    // Householder vectors, stored per-column.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

    for k in 0..n {
        // Build the Householder vector for column k, rows k..m.
        let mut v: Vec<f64> = (k..m).map(|i| r[i * n + k]).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
            v[0] += sign * norm;
            let vnorm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if vnorm > 0.0 {
                for x in &mut v {
                    *x /= vnorm;
                }
                // Apply H = I - 2vvᵀ to R[k.., k..].
                for j in k..n {
                    let dot: f64 = (k..m).map(|i| v[i - k] * r[i * n + j]).sum();
                    for i in k..m {
                        r[i * n + j] -= 2.0 * v[i - k] * dot;
                    }
                }
            }
        }
        vs.push(v);
    }

    // Q = H_0 · H_1 · … · H_{n-1} · I_thin — apply reflections in reverse to
    // the first n columns of the identity.
    let mut q = vec![0.0f64; m * n];
    for j in 0..n {
        q[j * n + j] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for j in 0..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * q[i * n + j]).sum();
            for i in k..m {
                q[i * n + j] -= 2.0 * v[i - k] * dot;
            }
        }
    }

    let q32: Vec<f32> = q.into_iter().map(|x| x as f32).collect();
    let mut r32 = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r32.set(i, j, r[i * n + j] as f32);
        }
    }
    (Matrix::from_vec(m, n, q32), r32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn reconstructs_input() {
        let mut rng = Rng::seed_from_u64(10);
        for &(m, n) in &[(4, 4), (10, 3), (50, 20)] {
            let a = Matrix::randn(m, n, &mut rng);
            let (q, r) = qr_thin(&a);
            assert_close(&q.matmul(&r), &a, 1e-4);
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let mut rng = Rng::seed_from_u64(11);
        let a = Matrix::randn(30, 8, &mut rng);
        let (q, _) = qr_thin(&a);
        let qtq = q.matmul_transa(&q);
        assert_close(&qtq, &Matrix::identity(8), 1e-4);
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = Rng::seed_from_u64(12);
        let a = Matrix::randn(9, 5, &mut rng);
        let (_, r) = qr_thin(&a);
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn handles_rank_deficient_input() {
        // Two identical columns: QR must still produce orthonormal Q.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let (q, r) = qr_thin(&a);
        assert_close(&q.matmul(&r), &a, 1e-5);
    }

    #[test]
    #[should_panic(expected = "qr_thin")]
    fn wide_input_panics() {
        let _ = qr_thin(&Matrix::zeros(2, 5));
    }
}
