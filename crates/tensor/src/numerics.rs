//! The numerics-mode switch: bit-exact kernels vs. the relaxed SIMD tier.
//!
//! Every kernel in this crate honors a process-wide [`NumericsMode`]:
//!
//! - [`NumericsMode::Exact`] (the default everywhere) keeps the bitwise
//!   contract documented in `matmul.rs` and `fused.rs`: strict ascending
//!   single-accumulator reductions, no reassociation, no FMA — results are
//!   bit-identical to the staged references at any thread count. All
//!   equality tests, checkpoints, and DDP replica invariance run in this
//!   mode.
//! - [`NumericsMode::Fast`] opts into the explicit-SIMD tier
//!   (`crate::simd`): 8-lane reassociated reductions and AVX2 FMA kernels
//!   where the CPU supports them, with a hand-unrolled 8-accumulator
//!   portable fallback otherwise. Fast-mode results are *not* bitwise
//!   reproducible against exact mode; they are held to the documented
//!   relative-error tolerances pinned by `tensor/tests/fast_numerics.rs`
//!   (see DESIGN.md "Numerics modes").
//!
//! The mode resolves per *calling* thread, mirroring the thread-count
//! override in `matmul.rs`: a thread-local override (tests sweeping both
//! modes in-process) wins over the process default set by the CLI
//! (`--numerics fast`), which wins over the `APOLLO_NUMERICS` environment
//! variable, which defaults to `Exact`. Worker-pool tasks inherit the
//! decision made at kernel entry on the issuing thread, so a single kernel
//! call never mixes tiers across bands.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which numerical contract the kernels run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericsMode {
    /// Bit-identical to the staged references (the default).
    Exact,
    /// Relaxed: SIMD/FMA kernels with reassociated reductions, held to
    /// documented relative-error tolerances instead of bit equality.
    Fast,
}

impl NumericsMode {
    /// Stable lowercase name (CLI values, bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            NumericsMode::Exact => "exact",
            NumericsMode::Fast => "fast",
        }
    }

    /// Parses a CLI/env spelling. Accepts `exact` / `fast`
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<NumericsMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact" => Some(NumericsMode::Exact),
            "fast" => Some(NumericsMode::Fast),
            _ => None,
        }
    }
}

/// Process-wide default: 0 = unset (fall through to env), 1 = exact,
/// 2 = fast.
static DEFAULT_MODE: AtomicU8 = AtomicU8::new(0);

fn env_mode() -> NumericsMode {
    static ENV: OnceLock<NumericsMode> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("APOLLO_NUMERICS")
            .ok()
            .as_deref()
            .and_then(NumericsMode::parse)
            .unwrap_or(NumericsMode::Exact)
    })
}

std::thread_local! {
    /// Per-thread override so tests can compare both modes within one
    /// process without racing other test threads on the global default.
    static MODE_OVERRIDE: std::cell::Cell<Option<NumericsMode>> =
        const { std::cell::Cell::new(None) };
}

/// Sets the process-wide default numerics mode (the CLI `--numerics`
/// entry point). Threads started afterwards — worker pools, the serving
/// scheduler — observe the new default.
pub fn set_numerics_default(mode: NumericsMode) {
    let v = match mode {
        NumericsMode::Exact => 1,
        NumericsMode::Fast => 2,
    };
    DEFAULT_MODE.store(v, Ordering::Relaxed);
}

/// Overrides the numerics mode for kernels issued *from the calling
/// thread* (`None` restores the process default / env behaviour). Used by
/// tests and benches that sweep both modes in-process.
pub fn set_numerics_override(mode: Option<NumericsMode>) {
    MODE_OVERRIDE.with(|c| c.set(mode));
}

/// The numerics mode kernels issued from the calling thread will use:
/// thread override, else process default ([`set_numerics_default`]), else
/// `APOLLO_NUMERICS`, else [`NumericsMode::Exact`].
pub fn current_numerics() -> NumericsMode {
    if let Some(m) = MODE_OVERRIDE.with(|c| c.get()) {
        return m;
    }
    match DEFAULT_MODE.load(Ordering::Relaxed) {
        1 => NumericsMode::Exact,
        2 => NumericsMode::Fast,
        _ => env_mode(),
    }
}

/// Which SIMD instruction tier the fast kernels dispatch to on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// AVX2 + FMA `std::arch` intrinsics (f32x8).
    Avx2,
    /// Hand-unrolled 8-lane portable fallback.
    Portable,
}

impl SimdTier {
    /// Stable lowercase name (obs counters, bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Avx2 => "avx2",
            SimdTier::Portable => "portable",
        }
    }
}

/// The runtime-detected SIMD tier, probed exactly once per process.
///
/// Caching matters beyond speed: a single cached answer guarantees every
/// fast-mode kernel in a run uses the same tier, and lets the bench
/// harness record which tier actually produced its numbers (so AVX2
/// results are never silently compared against portable-fallback results
/// from another host).
pub fn simd_tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(detect_tier)
}

#[cfg(target_arch = "x86_64")]
fn detect_tier() -> SimdTier {
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        SimdTier::Avx2
    } else {
        SimdTier::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_tier() -> SimdTier {
    SimdTier::Portable
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_the_default() {
        // The test binary never sets the process default, and this test
        // thread sets no override, so the resolved mode is Exact (the CI
        // environment never exports APOLLO_NUMERICS).
        set_numerics_override(None);
        assert_eq!(current_numerics(), NumericsMode::Exact);
    }

    #[test]
    fn override_wins_and_restores() {
        set_numerics_override(Some(NumericsMode::Fast));
        assert_eq!(current_numerics(), NumericsMode::Fast);
        set_numerics_override(None);
        assert_eq!(current_numerics(), NumericsMode::Exact);
    }

    #[test]
    fn parse_round_trips() {
        for m in [NumericsMode::Exact, NumericsMode::Fast] {
            assert_eq!(NumericsMode::parse(m.name()), Some(m));
        }
        assert_eq!(NumericsMode::parse("FAST"), Some(NumericsMode::Fast));
        assert_eq!(NumericsMode::parse("fastest"), None);
    }

    #[test]
    fn simd_tier_is_stable() {
        // Two probes must agree — the OnceLock guarantees one detection.
        assert_eq!(simd_tier(), simd_tier());
        assert!(matches!(simd_tier().name(), "avx2" | "portable"));
    }
}
