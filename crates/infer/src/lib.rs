//! `apollo-infer` — KV-cached generation engine with a continuous-batching
//! serving loop.
//!
//! Layers, bottom to top:
//!
//! - [`sample`] / [`GenConfig`]: deterministic greedy / temperature /
//!   top-k / top-p next-token sampling over LM-head logits.
//! - [`generate`]: serial token-at-a-time decoding through
//!   [`apollo_nn::KvCache`] — the byte-identity reference for everything
//!   above it.
//! - [`Scheduler`]: single-threaded continuous-batching core. Admits
//!   [`GenRequest`]s into a fixed set of slots, batches prefill and decode
//!   rows across in-flight sequences each [`Scheduler::tick`], retires
//!   finished sequences, and back-fills freed slots.
//! - [`Server`]: a worker thread driving the scheduler, with non-blocking
//!   bounded admission ([`Server::submit`]), per-request [`GenHandle`]s
//!   (streaming [`GenEvent`]s, cancel-on-drop), and explicit drain.
//! - [`net`] / [`Frontend`]: a hand-rolled HTTP/1.1 layer over
//!   `std::net` — request parsing with hard limits, chunked streaming
//!   responses, admission control mapped to status codes, per-request
//!   deadlines, load shedding, and graceful drain.
//! - [`run_loadgen`]: an open-loop Poisson load generator with
//!   deterministic fault injection (slow-loris, mid-stream disconnect,
//!   malformed requests, bursts) and a shared-system-prompt traffic shape
//!   (`--prefix-reuse`) used by the fault-plan tests, the CI serve-smoke
//!   stage, and `BENCH_serve.json`.
//! - [`PrefixCache`] / [`ServeStats`]: a token-level radix tree over
//!   exported KV blocks that lets prompts sharing a prefix skip re-prefill
//!   (bit-identically, per `tests/prefix_churn.rs`), and the shared atomic
//!   counters behind `GET /stats`. Multi-adapter routing rides the same
//!   scheduler: per-request [`apollo_nn::AdapterRegistry`] ids batch
//!   requests for different LoRA adapters into one decode tick.
//!
//! The central invariant, pinned by `tests/scheduler.rs`: because the
//! KV-cached forward computes every batch row independently and
//! bit-identically to the serial path, and sampling state is per-request,
//! tokens produced under continuous batching are **byte-identical** to
//! running each request alone through [`generate`].

mod engine;
mod frontend;
mod loadgen;
pub mod net;
mod prefix;
mod sample;
mod scheduler;
mod server;
mod stats;

pub use engine::{generate, generate_backend};
pub use frontend::{DrainReport, Frontend, ServeConfig};
pub use loadgen::{run_loadgen, FaultMix, LoadConfig, LoadReport};
pub use prefix::{PrefixCache, PrefixHit, PrefixLease};
pub use sample::{sample, GenConfig};
pub use scheduler::{GenRequest, GenResult, Outcome, SchedConfig, Scheduler, SubmitError};
pub use server::{GenEvent, GenHandle, Server, WaitError};
pub use stats::ServeStats;
