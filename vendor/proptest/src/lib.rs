//! Offline shim for `proptest`: a deterministic property-testing harness.
//!
//! Unlike the real proptest there is no shrinking and no persisted failure
//! file: every case is generated from a splitmix64 stream seeded by
//! `fnv1a(test name) ^ f(case index)`, so failures reproduce bit-exactly
//! across runs and machines. The supported surface is exactly what this
//! workspace's property tests use: integer/float range strategies,
//! `any::<T>()`, tuples, `prop_map`, `collection::vec`, and the
//! `proptest!`/`prop_assert*`/`prop_assume!` macros.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; retry with fresh ones.
    Reject,
}

/// Outcome type threaded through `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: runs `config.cases` accepted cases, panicking on
/// the first failure with the case index (deterministic, so re-runnable).
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base = fnv1a(name);
    let mut accepted = 0u32;
    let mut attempt = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(16).max(256);
    while accepted < config.cases {
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "proptest shim: `{name}` rejected too many cases \
                 ({accepted}/{} accepted after {attempt} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::seed(base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case #{attempt}: {msg}")
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                // span == 0 means the full u64 domain; take the raw draw.
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (lo + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.next_f64() * (hi - lo)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                (lo + rng.next_f64() * (hi - lo)) as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

/// Types with a canonical whole-domain strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        ((rng.next_f64() - 0.5) * 2e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// Strategy for an [`Arbitrary`] type; construct via [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies. Ranges convert
    /// via `Into`, so untyped literals like `2..10` infer as `usize` —
    /// matching real proptest's `Into<SizeRange>` signature.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<E> {
        elem: E,
        sizes: SizeRange,
    }

    /// A `Vec` strategy: each case draws a length from `sizes`, then that
    /// many elements from `elem`.
    pub fn vec<E: Strategy>(elem: E, sizes: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            elem,
            sizes: sizes.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let span = (self.sizes.hi - self.sizes.lo + 1) as u64;
            let n = self.sizes.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// Defines deterministic property tests; mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0usize..10, y in any::<u64>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal: expand each test fn under an explicit config expression.
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &__config, |__rng| {
                let ($($arg,)+) =
                    $crate::Strategy::gen_value(&($($strat,)+), __rng);
                $body
                Ok(())
            });
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a `proptest!` body; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Rejects the current case (inputs don't satisfy a precondition); the
/// runner draws fresh inputs without counting this case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::seed(7);
        for _ in 0..1000 {
            let x = Strategy::gen_value(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::gen_value(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&y));
            let f = Strategy::gen_value(&(-3.0f32..3.0), &mut rng);
            assert!((-3.0..3.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::seed(42);
            (0..8).map(|_| any::<u64>().gen_value(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::seed(42);
            (0..8).map(|_| any::<u64>().gen_value(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_up(x in 0usize..100, v in crate::collection::vec(any::<u8>(), 0..9)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
