//! Reusable scratch-buffer pool for `f32` workspaces.
//!
//! Training allocates the same handful of buffer sizes over and over:
//! matmul outputs, autograd gradients, packed kernel panels, optimizer
//! update vectors. Routing those through a thread-local freelist turns the
//! steady-state allocation rate to ~zero — after the first step every
//! `Matrix::zeros` is a warm, page-mapped buffer.
//!
//! The pool is thread-local (no locks); a `Vec<f32>`'s storage has no
//! thread affinity, so buffers freed on one thread and reused on another
//! would also be fine — they simply land in different freelists.
//!
//! Buffers are recycled explicitly ([`recycle`]) rather than via a `Drop`
//! impl on `Matrix`, which would forbid moving the data out (`into_vec`)
//! and would churn the pool on every temporary. The high-traffic recycle
//! points are the autograd graph (dropped once per step) and the kernels'
//! internal panels.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Retain at most this many free buffers per thread.
const MAX_BUFS: usize = 64;

/// Retain at most this many total f32 elements per thread (256 MiB).
const MAX_ELEMS: usize = 64 << 20;

/// Global (all-thread) pool statistics: freelists are thread-local, but
/// the worker pool means allocations happen on many threads, so run-level
/// accounting has to aggregate across them.
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RETAINED_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Thread-local freelist wrapper whose `Drop` returns this thread's
/// retained bytes to the global gauge, so dying threads (e.g. test
/// runners) don't leak into the accounting.
struct Freelist(Vec<Vec<f32>>);

impl Drop for Freelist {
    fn drop(&mut self) {
        let bytes: usize = self.0.iter().map(|b| 4 * b.capacity()).sum();
        RETAINED_BYTES.fetch_sub(bytes, Ordering::Relaxed);
    }
}

thread_local! {
    static FREE: RefCell<Freelist> = const { RefCell::new(Freelist(Vec::new())) };
}

/// Snapshot of the global scratch-pool counters, aggregated over every
/// thread's freelist since process start.
#[derive(Debug, Clone, Copy)]
pub struct ScratchStats {
    /// `take_zeroed` calls served from a pooled buffer.
    pub hits: u64,
    /// `take_zeroed` calls that had to allocate fresh storage.
    pub misses: u64,
    /// Bytes currently held across all thread freelists.
    pub retained_bytes: usize,
}

impl ScratchStats {
    /// Fraction of takes served from the pool (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads the global pool counters.
pub fn stats() -> ScratchStats {
    ScratchStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        retained_bytes: RETAINED_BYTES.load(Ordering::Relaxed),
    }
}

/// Takes a zeroed buffer of exactly `len` elements, reusing pooled storage
/// when a large-enough buffer is available (best capacity fit).
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let reused = FREE.with(|f| {
        let free = &mut f.borrow_mut().0;
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
                if cap == len {
                    break;
                }
            }
        }
        best.map(|(i, _)| free.swap_remove(i))
    });
    match reused {
        Some(mut buf) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            RETAINED_BYTES.fetch_sub(4 * buf.capacity(), Ordering::Relaxed);
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            vec![0.0; len]
        }
    }
}

/// Returns a buffer's storage to the thread's freelist. Buffers beyond the
/// count/byte caps are dropped (truly freed) instead.
pub fn recycle(mut buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    FREE.with(|f| {
        let free = &mut f.borrow_mut().0;
        let held: usize = free.iter().map(Vec::capacity).sum();
        if free.len() >= MAX_BUFS || held + buf.capacity() > MAX_ELEMS {
            return;
        }
        buf.clear();
        RETAINED_BYTES.fetch_add(4 * buf.capacity(), Ordering::Relaxed);
        free.push(buf);
    });
}

/// Number of buffers currently pooled on this thread (for tests/metrics).
pub fn pooled_buffers() -> usize {
    FREE.with(|f| f.borrow().0.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_exact_len() {
        let buf = take_zeroed(17);
        assert_eq!(buf.len(), 17);
        assert!(buf.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn recycled_storage_is_reused_and_rezeroed() {
        let mut buf = take_zeroed(100);
        buf.iter_mut().for_each(|x| *x = 3.5);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        recycle(buf);
        let again = take_zeroed(80);
        assert_eq!(again.as_ptr(), ptr, "expected storage reuse");
        assert_eq!(again.capacity(), cap);
        assert!(again.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        recycle(Vec::with_capacity(1000));
        recycle(Vec::with_capacity(50));
        recycle(Vec::with_capacity(200));
        let buf = take_zeroed(60);
        assert_eq!(buf.capacity(), 200);
        // Drain so later tests on this thread start clean.
        while pooled_buffers() > 0 {
            let _ = take_zeroed(1);
        }
    }

    #[test]
    fn stats_track_hits_misses_and_retained_bytes() {
        // Drain this thread's pool so the next take is a guaranteed miss.
        while pooled_buffers() > 0 {
            let _ = take_zeroed(1);
        }
        let before = stats();
        let buf = take_zeroed(12_345);
        let after_miss = stats();
        assert!(after_miss.misses > before.misses, "fresh alloc must count");
        let cap = buf.capacity();
        recycle(buf);
        // Our freelist holds the buffer until we take it back, so the
        // global gauge must report at least its bytes.
        assert!(stats().retained_bytes >= 4 * cap);
        let _ = take_zeroed(12_345);
        let after_hit = stats();
        assert!(after_hit.hits > after_miss.hits, "pool reuse must count");
        assert!(after_hit.hit_rate() > 0.0);
    }

    #[test]
    fn thread_churn_returns_retained_bytes_to_baseline() {
        // Regression guard for the `Freelist::Drop` accounting: worker
        // threads that die with pooled buffers must hand their bytes back
        // to the global gauge. Each thread retains far more than the rest
        // of the (concurrently running) suite plausibly touches, so a
        // leak of even one thread's freelist trips the allowance.
        const THREADS: usize = 4;
        const PER_THREAD_ELEMS: usize = 8 << 20; // 32 MiB retained per thread
        const ALLOWANCE: usize = 8 << 20; // noise from concurrent tests
        let baseline = stats().retained_bytes;
        for round in 0..3 {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    std::thread::spawn(|| {
                        // The big buffers go in first (before the count cap
                        // fills) so each thread dies holding ~32 MiB.
                        recycle(Vec::with_capacity(PER_THREAD_ELEMS / 2));
                        recycle(Vec::with_capacity(PER_THREAD_ELEMS / 2));
                        // Mixed churn: takes, recycles, cap-overflow drops.
                        for _ in 0..MAX_BUFS + 8 {
                            recycle(Vec::with_capacity(1024));
                        }
                        let a = take_zeroed(4096);
                        let b = take_zeroed(123);
                        recycle(a);
                        recycle(b);
                        assert!(pooled_buffers() > 0, "thread must die holding buffers");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let after = stats().retained_bytes;
            assert!(
                after <= baseline + ALLOWANCE,
                "round {round}: retained {after} bytes vs baseline {baseline} — \
                 dead threads leaked into the gauge"
            );
        }
    }

    #[test]
    fn pool_respects_count_cap() {
        for _ in 0..(MAX_BUFS + 10) {
            recycle(Vec::with_capacity(8));
        }
        assert!(pooled_buffers() <= MAX_BUFS);
        while pooled_buffers() > 0 {
            let _ = take_zeroed(1);
        }
    }
}
