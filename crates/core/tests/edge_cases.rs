//! Failure-injection and edge-case tests for every optimizer: degenerate
//! shapes, extreme ranks, zero/huge gradients, and state-reset behaviour.

use apollo_optim::{
    AdamMini, AdamW, AdamWChannelwise, Apollo, Fira, Flora, GaLore, Optimizer, ParamUpdate,
    ScaleGranularity, Sgd, SgdMomentum,
};
use apollo_tensor::{Matrix, Rng};

fn all_optimizers() -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(Sgd::new()),
        Box::new(SgdMomentum::new(0.9)),
        Box::new(AdamW::new()),
        Box::new(AdamW::adam8bit(32)),
        Box::new(AdamMini::new()),
        Box::new(AdamWChannelwise::new()),
        Box::new(Apollo::new(4, 10)),
        Box::new(Apollo::new(4, 10).with_svd()),
        Box::new(Apollo::mini(10)),
        Box::new(Apollo::new(4, 10).with_granularity(ScaleGranularity::Tensor)),
        Box::new(GaLore::new(4, 10)),
        Box::new(GaLore::new(4, 10).with_random_projection()),
        Box::new(GaLore::galore8bit(4, 10, 32)),
        Box::new(Fira::new(4, 10)),
        Box::new(Flora::new(4, 10)),
    ]
}

fn step_once(opt: &mut dyn Optimizer, w: &mut Matrix, g: &Matrix) {
    let mut params = [ParamUpdate {
        name: "w",
        value: w,
        grad: g,
        projectable: true,
    }];
    opt.step(&mut params, 1e-2);
}

#[test]
fn one_by_one_tensors_do_not_panic() {
    for mut opt in all_optimizers() {
        let mut w = Matrix::full(1, 1, 1.0);
        let g = Matrix::full(1, 1, 0.5);
        for _ in 0..3 {
            step_once(opt.as_mut(), &mut w, &g);
        }
        assert!(w.all_finite(), "{}", opt.name());
    }
}

#[test]
fn single_row_and_single_column_tensors_work() {
    for mut opt in all_optimizers() {
        let name = opt.name();
        let mut row = Matrix::full(1, 16, 1.0);
        let g_row = Matrix::full(1, 16, 0.1);
        step_once(opt.as_mut(), &mut row, &g_row);
        assert!(row.all_finite(), "{name} row");
    }
    for mut opt in all_optimizers() {
        let name = opt.name();
        let mut col = Matrix::full(16, 1, 1.0);
        let g_col = Matrix::full(16, 1, 0.1);
        step_once(opt.as_mut(), &mut col, &g_col);
        assert!(col.all_finite(), "{name} col");
    }
}

#[test]
fn rank_larger_than_both_dims_is_clamped() {
    let mut opt = Apollo::new(1000, 10);
    let mut w = Matrix::zeros(4, 6);
    let g = Matrix::full(4, 6, 1.0);
    for _ in 0..3 {
        step_once(&mut opt, &mut w, &g);
    }
    assert!(w.all_finite());
    // 2·n·r(clamped to 4) + 2.
    assert_eq!(opt.state_elems(), 2 * 6 * 4 + 2);
}

#[test]
fn zero_gradients_leave_weights_unchanged_without_decay() {
    for mut opt in all_optimizers() {
        let name = opt.name();
        let mut w = Matrix::full(4, 8, 1.0);
        let g = Matrix::zeros(4, 8);
        for _ in 0..3 {
            step_once(opt.as_mut(), &mut w, &g);
        }
        for &x in w.as_slice() {
            assert!((x - 1.0).abs() < 1e-5, "{name}: moved on zero grad ({x})");
        }
    }
}

#[test]
fn huge_gradients_do_not_produce_nan() {
    for mut opt in all_optimizers() {
        let name = opt.name();
        let mut w = Matrix::zeros(4, 8);
        let g = Matrix::full(4, 8, 1e20);
        for _ in 0..3 {
            step_once(opt.as_mut(), &mut w, &g);
        }
        assert!(w.all_finite(), "{name}: non-finite weights from huge grads");
    }
}

#[test]
fn tiny_gradients_do_not_produce_nan() {
    for mut opt in all_optimizers() {
        let name = opt.name();
        let mut w = Matrix::zeros(4, 8);
        let g = Matrix::full(4, 8, 1e-30);
        for _ in 0..3 {
            step_once(opt.as_mut(), &mut w, &g);
        }
        assert!(w.all_finite(), "{name}");
    }
}

#[test]
fn reset_state_allows_param_list_change() {
    for mut opt in all_optimizers() {
        let mut w = Matrix::zeros(4, 8);
        let g = Matrix::full(4, 8, 1.0);
        step_once(opt.as_mut(), &mut w, &g);
        opt.reset_state();
        // New shape after reset must be accepted.
        let mut w2 = Matrix::zeros(2, 3);
        let g2 = Matrix::full(2, 3, 1.0);
        step_once(opt.as_mut(), &mut w2, &g2);
        assert!(w2.all_finite(), "{}", opt.name());
    }
}

#[test]
fn alternating_gradient_signs_remain_stable() {
    let mut rng = Rng::seed_from_u64(500);
    for mut opt in all_optimizers() {
        let name = opt.name();
        let mut w = Matrix::zeros(4, 8);
        for i in 0..20 {
            let mut g = Matrix::randn(4, 8, &mut rng);
            g.scale_assign(if i % 2 == 0 { 1.0 } else { -1.0 });
            step_once(opt.as_mut(), &mut w, &g);
        }
        assert!(w.all_finite(), "{name}");
        assert!(
            w.fro_norm() < 100.0,
            "{name}: runaway weights {}",
            w.fro_norm()
        );
    }
}

#[test]
fn mixed_projectable_and_dense_params_route_correctly() {
    let mut opt = Apollo::new(4, 10);
    let mut big = Matrix::zeros(8, 16);
    let mut norm = Matrix::full(1, 16, 1.0);
    let g_big = Matrix::full(8, 16, 1.0);
    let g_norm = Matrix::full(1, 16, 0.1);
    for _ in 0..3 {
        let mut params = [
            ParamUpdate {
                name: "w",
                value: &mut big,
                grad: &g_big,
                projectable: true,
            },
            ParamUpdate {
                name: "gain",
                value: &mut norm,
                grad: &g_norm,
                projectable: false,
            },
        ];
        opt.step(&mut params, 1e-2);
    }
    // low-rank part: 2·16·4 + 2; dense part: 2·16.
    assert_eq!(opt.state_elems(), (2 * 16 * 4 + 2) + 2 * 16);
}
