//! Compact little-endian binary codec for optimizer / training state.
//!
//! Used by [`crate::Optimizer::state_save`] / `state_load` and by the
//! training crate's checkpoint format. Deliberately not JSON: optimizer
//! moments are large f32 tensors, so the payload is raw LE bytes with
//! explicit lengths, written and read in bulk chunks rather than one
//! element at a time. Every read is bounds-checked and returns a
//! descriptive error instead of panicking, so a truncated or corrupted
//! checkpoint section surfaces as `Err`, never UB or garbage state.

use apollo_tensor::Matrix;

/// Chunk size (in f32 elements) for bulk slice conversion.
const CHUNK: usize = 1024;

/// Appends a whole `f32` slice to `out` as little-endian bytes, converting
/// in stack-buffer chunks (the bulk-write path shared with model
/// checkpoints).
pub fn extend_f32_le(out: &mut Vec<u8>, xs: &[f32]) {
    let mut tmp = [0u8; CHUNK * 4];
    out.reserve(xs.len() * 4);
    for chunk in xs.chunks(CHUNK) {
        for (i, &x) in chunk.iter().enumerate() {
            tmp[i * 4..i * 4 + 4].copy_from_slice(&x.to_le_bytes());
        }
        out.extend_from_slice(&tmp[..chunk.len() * 4]);
    }
}

/// Decodes `bytes` (length must be `4 × n`) into an `f32` vector.
pub fn f32_from_le(bytes: &[u8]) -> Result<Vec<f32>, String> {
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "f32 payload length {} not divisible by 4",
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect())
}

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Writes a `u32` (LE).
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Writes a `u64` (LE).
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Writes an `f32` (LE, bit-preserving).
    pub fn f32(&mut self, x: f32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, x: bool) {
        self.u8(u8::from(x));
    }

    /// Writes `Option<f32>` as presence byte + value.
    pub fn opt_f32(&mut self, x: Option<f32>) {
        match x {
            Some(v) => {
                self.u8(1);
                self.f32(v);
            }
            None => self.u8(0),
        }
    }

    /// Writes `Option<u64>` as presence byte + value.
    pub fn opt_u64(&mut self, x: Option<u64>) {
        match x {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed `f32` slice (bulk LE).
    pub fn f32_slice(&mut self, xs: &[f32]) {
        self.u64(xs.len() as u64);
        extend_f32_le(&mut self.buf, xs);
    }

    /// Writes a matrix: shape then bulk data.
    pub fn matrix(&mut self, m: &Matrix) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        extend_f32_le(&mut self.buf, m.as_slice());
    }

    /// Writes `Option<Matrix>` as presence byte + matrix.
    pub fn opt_matrix(&mut self, m: Option<&Matrix>) {
        match m {
            Some(m) => {
                self.u8(1);
                self.matrix(m);
            }
            None => self.u8(0),
        }
    }
}

/// Bounds-checked binary reader over a byte slice.
#[derive(Debug)]
pub struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

#[allow(clippy::len_without_is_empty)]
impl<'a> StateReader<'a> {
    /// Wraps a byte slice for reading.
    pub fn new(bytes: &'a [u8]) -> Self {
        StateReader { bytes, pos: 0 }
    }

    /// Whether all bytes were consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Errors if any bytes remain (detects mismatched layouts early).
    pub fn expect_exhausted(&self) -> Result<(), String> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(format!(
                "trailing state bytes: {} of {} unread",
                self.bytes.len() - self.pos,
                self.bytes.len()
            ))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("state length overflow")?;
        if end > self.bytes.len() {
            return Err(format!(
                "state truncated: need {} bytes at offset {}, have {}",
                n,
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and converts to `usize`.
    pub fn len(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "state length exceeds usize".to_string())
    }

    /// Reads an `f32` (LE, bit-preserving).
    pub fn f32(&mut self) -> Result<f32, String> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a bool byte (0 or 1).
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid bool byte {other}")),
        }
    }

    /// Reads `Option<f32>`.
    pub fn opt_f32(&mut self) -> Result<Option<f32>, String> {
        Ok(if self.bool()? {
            Some(self.f32()?)
        } else {
            None
        })
    }

    /// Reads `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let n = self.len()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| format!("invalid UTF-8 in state: {e}"))
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn f32_slice(&mut self) -> Result<Vec<f32>, String> {
        let n = self.len()?;
        let bytes = self.take(n.checked_mul(4).ok_or("f32 slice length overflow")?)?;
        f32_from_le(bytes)
    }

    /// Reads a matrix written by [`StateWriter::matrix`].
    pub fn matrix(&mut self) -> Result<Matrix, String> {
        let rows = self.len()?;
        let cols = self.len()?;
        let n = rows.checked_mul(cols).ok_or("matrix shape overflow")?;
        let bytes = self.take(n.checked_mul(4).ok_or("matrix byte length overflow")?)?;
        let data = f32_from_le(bytes)?;
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Reads `Option<Matrix>`.
    pub fn opt_matrix(&mut self) -> Result<Option<Matrix>, String> {
        Ok(if self.bool()? {
            Some(self.matrix()?)
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = StateWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f32(f32::NAN);
        w.bool(true);
        w.opt_f32(None);
        w.opt_f32(Some(-0.0));
        w.opt_u64(Some(42));
        w.str("projector/π");
        w.f32_slice(&[1.0, -2.5, 3.25]);
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        w.matrix(&m);
        w.opt_matrix(None);
        let bytes = w.into_bytes();

        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.f32().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_f32().unwrap(), None);
        assert_eq!(r.opt_f32().unwrap().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.str().unwrap(), "projector/π");
        assert_eq!(r.f32_slice().unwrap(), vec![1.0, -2.5, 3.25]);
        assert_eq!(r.matrix().unwrap(), m);
        assert_eq!(r.opt_matrix().unwrap(), None);
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = StateWriter::new();
        w.matrix(&Matrix::full(4, 4, 1.0));
        let bytes = w.into_bytes();
        for cut in [0, 1, 8, 15, 16, 20, bytes.len() - 1] {
            let mut r = StateReader::new(&bytes[..cut]);
            assert!(r.matrix().is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = StateWriter::new();
        w.u32(1);
        w.u8(9); // extra
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        r.u32().unwrap();
        assert!(r.expect_exhausted().is_err());
    }

    #[test]
    fn bulk_f32_roundtrip_spans_chunk_boundaries() {
        let xs: Vec<f32> = (0..CHUNK * 2 + 17)
            .map(|i| i as f32 * 0.5 - 100.0)
            .collect();
        let mut out = Vec::new();
        extend_f32_le(&mut out, &xs);
        assert_eq!(out.len(), xs.len() * 4);
        assert_eq!(f32_from_le(&out).unwrap(), xs);
    }
}
