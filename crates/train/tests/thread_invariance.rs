//! End-to-end thread-count invariance: a short APOLLO pretrain must produce
//! *bit-identical* losses and parameters at every kernel thread count.
//!
//! The matmul kernels accumulate each output element in a fixed
//! ascending-`p` order and partition work by output rows only, so the
//! worker pool must never change a single bit of the training trajectory —
//! this is the repo-level determinism contract the perf work is built on.

use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_optim::Apollo;
use apollo_tensor::{set_thread_override, Rng};
use apollo_train::{pretrain, TrainConfig};

/// Runs a short APOLLO pretrain at the given kernel thread count and
/// returns the loss bit patterns plus final parameter bits.
fn run_at(threads: usize) -> (Vec<(usize, u32)>, Vec<Vec<u32>>) {
    set_thread_override(Some(threads));
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(7);
    let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, 2, cfg.max_seq);
    let mut opt = Apollo::new(4, 5);
    let log = pretrain(&mut model, &mut opt, &mut batcher, &TrainConfig::quick(8));
    set_thread_override(None);
    let losses = log
        .train_losses
        .iter()
        .map(|&(s, l)| (s, l.to_bits()))
        .collect();
    let params = model
        .params
        .iter()
        .map(|p| p.value.as_slice().iter().map(|x| x.to_bits()).collect())
        .collect();
    (losses, params)
}

#[test]
fn apollo_losses_are_bit_identical_across_thread_counts() {
    let (base_losses, base_params) = run_at(1);
    assert!(!base_losses.is_empty());
    for threads in [2, 8] {
        let (losses, params) = run_at(threads);
        assert_eq!(
            losses, base_losses,
            "loss bits diverge between threads=1 and threads={threads}"
        );
        assert_eq!(
            params, base_params,
            "final parameter bits diverge between threads=1 and threads={threads}"
        );
    }
}
