//! Fused single-pass elementwise kernels.
//!
//! The matmuls were taken off the memory wall by the packed kernels in
//! `matmul.rs`; what remains between them is elementwise glue — RMSNorm,
//! RoPE, SwiGLU, softmax cross-entropy, residual updates, and the
//! optimizer's moment/weight chains — that the staged `Matrix` ops walk in
//! three to seven full passes each. Every kernel here performs the same
//! chain in a single traversal (two for softmax cross-entropy, which needs
//! the row max first), with inner loops unrolled in 8-wide lanes and no
//! per-element branches, so the compiler can vectorize the elementwise
//! work.
//!
//! # Bit-identity contract
//!
//! Each fused kernel is *bit-identical* to the staged reference it
//! replaces ([`reference`] keeps those alive for the property tests and
//! benchmarks), not merely close:
//!
//! - every element's float expression is copied verbatim from the staged
//!   ops, including associativity (`(v * inv) * g`, `(beta * m) +
//!   (((1 - beta) * g) * g)`, …);
//! - reductions (row mean-squares, softmax denominators, Frobenius norms,
//!   the loss sum) keep the reference's strict ascending single-accumulator
//!   order — the 8-lane unrolling applies only to independent elementwise
//!   work, never to a reduction, because float addition does not
//!   reassociate;
//! - large inputs are split into row bands on the worker pool exactly like
//!   the matmuls: the partition is a pure function of `(rows, threads)`
//!   and each band owns a disjoint output slice, so results match the
//!   serial path bit-for-bit at any thread count. Cross-row reductions
//!   (the RMSNorm gain gradient, loss and norm sums) always run serially.
//!
//! `tensor/tests/fused_equivalence.rs` pins the contract per kernel across
//! adversarial shapes and thread counts; the train-loop test in
//! `apollo-nn` pins it end-to-end against the staged graph arm.

use crate::matmul::{current_threads, should_parallelize};
use crate::numerics::{current_numerics, NumericsMode};
use crate::pool;
use crate::{simd, Matrix};

/// Whether kernels issued from this thread run the relaxed SIMD tier
/// (resolved once at kernel entry, on the issuing thread — see
/// `crate::numerics`).
fn fast_mode() -> bool {
    current_numerics() == NumericsMode::Fast
}

// Per-element cost estimates feeding the shared parallelism gate
// (`should_parallelize`, threshold 2^20 FLOPs). Transcendental-heavy
// kernels count higher so they cross onto the pool at smaller shapes.
const RMSNORM_FWD_FLOPS: usize = 4;
const RMSNORM_BWD_FLOPS: usize = 10;
const SWIGLU_FWD_FLOPS: usize = 16;
const SWIGLU_BWD_FLOPS: usize = 24;
const XENT_FLOPS: usize = 24;
const ROPE_FLOPS: usize = 16;
const AXPY_FLOPS: usize = 3;
const ADAM_FLOPS: usize = 12;
const SCALE_NORM_FLOPS: usize = 5;

/// Raw output pointer shared across pool tasks; tasks carve disjoint
/// ranges out of it (same pattern as the matmul kernels' `OutPtr`).
#[derive(Clone, Copy)]
struct BandPtr(*mut f32);

impl BandPtr {
    /// Reborrows `len` elements starting at `start` as a mutable slice.
    ///
    /// # Safety
    ///
    /// Callers must hand out non-overlapping `start..start + len` ranges
    /// and keep the underlying buffer alive for the duration of use; both
    /// hold for the disjoint row bands of a blocking [`pool::Pool::run`].
    unsafe fn slice<'a>(self, start: usize, len: usize) -> &'a mut [f32] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(start), len) }
    }
}

// SAFETY: tasks index disjoint ranges, established by the band partition
// in `par_bands`.
unsafe impl Send for BandPtr {}
unsafe impl Sync for BandPtr {}

/// Runs `run(lo, hi)` over row bands of an `rows`-row problem, on the
/// worker pool when the FLOP gate passes, serially otherwise. The band
/// partition is a pure function of `(rows, threads)`, so any output
/// produced from disjoint per-band writes is bit-identical for every
/// thread count (including 1).
fn par_bands(rows: usize, flops: usize, run: impl Fn(usize, usize) + Sync) {
    let threads = current_threads();
    if !should_parallelize(threads, rows, flops) {
        run(0, rows);
        return;
    }
    let band = rows.div_ceil(threads);
    let n_bands = rows.div_ceil(band);
    pool::Pool::run(threads, n_bands, &|t| {
        let lo = t * band;
        let hi = ((t + 1) * band).min(rows);
        run(lo, hi);
    });
}

/// `1 / (1 + e^{-x})`, the graph's SiLU sigmoid expression.
#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Applies `out[i] = f(i)` over a lane-unrolled elementwise loop: full
/// 8-wide chunks run a fixed-trip inner loop (unrolled and, for simple
/// `f`, vectorized by the compiler), the tail runs scalar. Each element is
/// independent, so the unroll cannot change any result bit.
#[inline]
fn for_each_lane(out: &mut [f32], f: impl Fn(usize) -> f32) {
    let chunks = out.len() / 8;
    for c in 0..chunks {
        let base = c * 8;
        let lane: &mut [f32] = &mut out[base..base + 8];
        for (i, o) in lane.iter_mut().enumerate() {
            *o = f(base + i);
        }
    }
    for (i, o) in out.iter_mut().enumerate().skip(chunks * 8) {
        *o = f(i);
    }
}

// ----- rmsnorm ---------------------------------------------------------------

/// Row-wise RMSNorm with learned gain in one traversal per row.
///
/// Returns the normalized output and the cached `1 / rms` per row (the
/// only activation the backward needs). Bit-identical to the staged
/// reference: ascending mean-square sum, then `(v * inv) * g` per element.
///
/// # Panics
///
/// Panics if `gain` is not `1 × cols`.
pub fn fused_rmsnorm_fwd(x: &Matrix, gain: &Matrix, eps: f32) -> (Matrix, Vec<f32>) {
    assert_eq!(
        gain.shape(),
        (1, x.cols()),
        "fused_rmsnorm_fwd: gain must be 1 x cols"
    );
    let (rows, cols) = x.shape();
    let n = cols as f32;
    let mut y = Matrix::zeros(rows, cols);
    let mut inv_rms = vec![0.0f32; rows];
    let xs = x.as_slice();
    let gs = gain.row(0);
    let yp = BandPtr(y.as_mut_slice().as_mut_ptr());
    let ip = BandPtr(inv_rms.as_mut_ptr());
    if fast_mode() {
        // Relaxed tier: 8-lane reassociated mean-square reduction and a
        // SIMD gain write per row (tolerances pinned by fast_numerics.rs).
        par_bands(rows, rows * cols * RMSNORM_FWD_FLOPS, |lo, hi| {
            // SAFETY: bands are disjoint row ranges; `y` and `inv_rms`
            // outlive the blocking pool call.
            let yband = unsafe { yp.slice(lo * cols, (hi - lo) * cols) };
            let iband = unsafe { ip.slice(lo, hi - lo) };
            for r in lo..hi {
                let row = &xs[r * cols..][..cols];
                let inv = 1.0 / (simd::sum_squares(row) / n + eps).sqrt();
                iband[r - lo] = inv;
                let out = &mut yband[(r - lo) * cols..][..cols];
                simd::scale_gain(out, row, inv, &gs[..cols]);
            }
        });
        return (y, inv_rms);
    }
    par_bands(rows, rows * cols * RMSNORM_FWD_FLOPS, |lo, hi| {
        // SAFETY: bands are disjoint row ranges; `y` and `inv_rms` outlive
        // the blocking pool call.
        let yband = unsafe { yp.slice(lo * cols, (hi - lo) * cols) };
        let iband = unsafe { ip.slice(lo, hi - lo) };
        let gsl = &gs[..cols];
        let mut r = lo;
        // Four rows at a time: each row's mean-square sum is a strict
        // sequential chain (bit-identity forbids reassociating it), so a
        // single row is f32-add-latency-bound. Four independent rows'
        // chains interleave to hide that latency while every row still
        // accumulates in exactly the reference's ascending order.
        while r + 4 <= hi {
            let x0 = &xs[r * cols..][..cols];
            let x1 = &xs[(r + 1) * cols..][..cols];
            let x2 = &xs[(r + 2) * cols..][..cols];
            let x3 = &xs[(r + 3) * cols..][..cols];
            let mut acc = [0.0f32; 4];
            for j in 0..cols {
                acc[0] += x0[j] * x0[j];
                acc[1] += x1[j] * x1[j];
                acc[2] += x2[j] * x2[j];
                acc[3] += x3[j] * x3[j];
            }
            for (i, xrow) in [x0, x1, x2, x3].into_iter().enumerate() {
                let inv = 1.0 / (acc[i] / n + eps).sqrt();
                iband[r - lo + i] = inv;
                let out = &mut yband[(r - lo + i) * cols..][..cols];
                for ((o, &v), &g) in out.iter_mut().zip(xrow).zip(gsl) {
                    *o = v * inv * g;
                }
            }
            r += 4;
        }
        while r < hi {
            let row = &xs[r * cols..][..cols];
            // Strict ascending single-accumulator sum (reduction: no lanes).
            let ms = row.iter().map(|&v| v * v).sum::<f32>() / n;
            let inv = 1.0 / (ms + eps).sqrt();
            iband[r - lo] = inv;
            let out = &mut yband[(r - lo) * cols..][..cols];
            for ((o, &v), &g) in out.iter_mut().zip(row).zip(gsl) {
                *o = v * inv * g;
            }
            r += 1;
        }
    });
    (y, inv_rms)
}

/// Backward of [`fused_rmsnorm_fwd`]: returns `(dx, dgain)`.
///
/// `dx` rows are independent and band-parallel; the gain gradient is a
/// cross-row reduction and always accumulates serially in ascending row
/// order (the reference's order).
pub fn fused_rmsnorm_bwd(
    x: &Matrix,
    gain: &Matrix,
    gout: &Matrix,
    inv_rms: &[f32],
) -> (Matrix, Matrix) {
    let (rows, cols) = x.shape();
    let n = cols as f32;
    let mut dx = Matrix::zeros(rows, cols);
    let mut dg = Matrix::zeros(1, cols);
    let xs = x.as_slice();
    let gs = gain.row(0);
    let gos = gout.as_slice();
    let threads = current_threads();
    let flops = rows * cols * RMSNORM_BWD_FLOPS;
    let gsl = &gs[..cols];
    // Four-row block: each row's `t = Σ_j dy_j · g_j · x_j` reduction is a
    // strict sequential chain (the reference's ascending order), so one
    // row is f32-add-latency-bound; interleaving four independent rows'
    // chains hides the latency without touching any row's own order.
    let dx_rows4 = |r: usize, out: &mut [f32]| {
        let x0 = &xs[r * cols..][..cols];
        let x1 = &xs[(r + 1) * cols..][..cols];
        let x2 = &xs[(r + 2) * cols..][..cols];
        let x3 = &xs[(r + 3) * cols..][..cols];
        let g0 = &gos[r * cols..][..cols];
        let g1 = &gos[(r + 1) * cols..][..cols];
        let g2 = &gos[(r + 2) * cols..][..cols];
        let g3 = &gos[(r + 3) * cols..][..cols];
        let (mut t0, mut t1, mut t2, mut t3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for j in 0..cols {
            let gv = gsl[j];
            t0 += g0[j] * gv * x0[j];
            t1 += g1[j] * gv * x1[j];
            t2 += g2[j] * gv * x2[j];
            t3 += g3[j] * gv * x3[j];
        }
        let t = [t0, t1, t2, t3];
        let rows4 = [(x0, g0), (x1, g1), (x2, g2), (x3, g3)];
        for (i, (xrow, grow)) in rows4.into_iter().enumerate() {
            let inv = inv_rms[r + i];
            let ti = t[i];
            let orow = &mut out[i * cols..][..cols];
            for (((o, &gy), &gv), &xv) in orow.iter_mut().zip(grow).zip(gsl).zip(xrow) {
                *o = gy * gv * inv - inv * inv * inv / n * xv * ti;
            }
        }
    };
    let dx_row = |r: usize, inv: f32, dxrow: &mut [f32]| {
        let xrow = &xs[r * cols..][..cols];
        let grow = &gos[r * cols..][..cols];
        // t = Σ_j dy_j · g_j · x_j (reduction: strict ascending order).
        let mut t = 0.0f32;
        for ((&gy, &gv), &xv) in grow.iter().zip(gsl).zip(xrow) {
            t += gy * gv * xv;
        }
        for (((o, &gy), &gv), &xv) in dxrow.iter_mut().zip(grow).zip(gsl).zip(xrow) {
            *o = gy * gv * inv - inv * inv * inv / n * xv * t;
        }
    };
    let dx_band = |lo: usize, hi: usize, band: &mut [f32]| {
        let mut r = lo;
        while r + 4 <= hi {
            dx_rows4(r, &mut band[(r - lo) * cols..][..4 * cols]);
            r += 4;
        }
        while r < hi {
            dx_row(r, inv_rms[r], &mut band[(r - lo) * cols..][..cols]);
            r += 1;
        }
    };
    if should_parallelize(threads, rows, flops) {
        let dxp = BandPtr(dx.as_mut_slice().as_mut_ptr());
        par_bands(rows, flops, |lo, hi| {
            // SAFETY: disjoint row bands of `dx`, which outlives the call.
            let band = unsafe { dxp.slice(lo * cols, (hi - lo) * cols) };
            dx_band(lo, hi, band);
        });
    } else {
        dx_band(0, rows, dx.as_mut_slice());
    }
    // Gain gradient: sequential ascending-row accumulation (a cross-row
    // reduction, so it never runs on the pool); per-column chains are
    // independent, so the inner loop vectorizes.
    let dgs = dg.as_mut_slice();
    for (r, &inv) in inv_rms.iter().enumerate() {
        let xrow = &xs[r * cols..][..cols];
        let grow = &gos[r * cols..][..cols];
        for ((d, &gy), &xv) in dgs.iter_mut().zip(grow).zip(xrow) {
            *d += gy * xv * inv;
        }
    }
    (dx, dg)
}

// ----- swiglu ----------------------------------------------------------------

/// `silu(a) ⊙ b` in one pass, without the staged path's silu temporary.
///
/// Per element: `(a · σ(a)) · b`, the exact composition of the staged
/// `map` + `hadamard`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn fused_swiglu_fwd(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "fused_swiglu_fwd: shape mismatch");
    let (rows, cols) = a.shape();
    let mut out = Matrix::zeros(rows, cols);
    let avs = a.as_slice();
    let bvs = b.as_slice();
    let op = BandPtr(out.as_mut_slice().as_mut_ptr());
    let fast = fast_mode();
    par_bands(rows, rows * cols * SWIGLU_FWD_FLOPS, |lo, hi| {
        // SAFETY: disjoint row bands of `out`, which outlives the call.
        let band = unsafe { op.slice(lo * cols, (hi - lo) * cols) };
        let aband = &avs[lo * cols..hi * cols];
        let bband = &bvs[lo * cols..hi * cols];
        if fast {
            // Relaxed tier: vectorized polynomial exp inside the sigmoid.
            simd::silu_mul(aband, bband, band);
            return;
        }
        for_each_lane(band, |i| {
            let av = aband[i];
            av * sigmoid(av) * bband[i]
        });
    });
    out
}

/// Backward of [`fused_swiglu_fwd`]: returns `(da, db)` in one traversal,
/// recomputing `σ(a)` instead of caching the silu activation (the same
/// expression as the forward, hence the same bits).
pub fn fused_swiglu_bwd(a: &Matrix, b: &Matrix, gout: &Matrix) -> (Matrix, Matrix) {
    assert_eq!(a.shape(), b.shape(), "fused_swiglu_bwd: shape mismatch");
    assert_eq!(a.shape(), gout.shape(), "fused_swiglu_bwd: gout mismatch");
    let (rows, cols) = a.shape();
    let mut da = Matrix::zeros(rows, cols);
    let mut db = Matrix::zeros(rows, cols);
    let avs = a.as_slice();
    let bvs = b.as_slice();
    let gos = gout.as_slice();
    let dap = BandPtr(da.as_mut_slice().as_mut_ptr());
    let dbp = BandPtr(db.as_mut_slice().as_mut_ptr());
    par_bands(rows, rows * cols * SWIGLU_BWD_FLOPS, |lo, hi| {
        // SAFETY: disjoint row bands of `da`/`db`, which outlive the call.
        let daband = unsafe { dap.slice(lo * cols, (hi - lo) * cols) };
        let dbband = unsafe { dbp.slice(lo * cols, (hi - lo) * cols) };
        let base = lo * cols;
        for i in 0..(hi - lo) * cols {
            let x = avs[base + i];
            let g = gos[base + i];
            let s = sigmoid(x);
            // Staged arm: mul backward feeds `g · b` into silu backward
            // (`(g·b) · s · (1 + x·(1 − s))`) and `g · silu(a)` into db.
            daband[i] = g * bvs[base + i] * s * (1.0 + x * (1.0 - s));
            dbband[i] = g * (x * s);
        }
    });
    (da, db)
}

// ----- softmax cross-entropy -------------------------------------------------

/// Mean softmax cross-entropy forward in two row passes (max, then
/// exp+sum) instead of the staged five.
///
/// Returns `(mean_loss, exps, denoms)` where `exps` holds the
/// *unnormalized* shifted exponentials and `denoms` the per-row sums —
/// together they are the backward's whole cache, and `exps[t] / denom` is
/// bit-identical to the staged path's normalized probability (one
/// division, same operands).
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target is out of range.
pub fn fused_softmax_xent_fwd(logits: &Matrix, targets: &[u32]) -> (f32, Matrix, Vec<f32>) {
    let (rows, cols) = logits.shape();
    assert_eq!(
        targets.len(),
        rows,
        "fused_softmax_xent_fwd: one target per row required"
    );
    for &t in targets {
        assert!(
            (t as usize) < cols,
            "fused_softmax_xent_fwd: target {t} out of range"
        );
    }
    let mut exps = Matrix::zeros(rows, cols);
    let mut denoms = vec![0.0f32; rows];
    let ls = logits.as_slice();
    let ep = BandPtr(exps.as_mut_slice().as_mut_ptr());
    let dp = BandPtr(denoms.as_mut_ptr());
    let fast = fast_mode();
    par_bands(rows, rows * cols * XENT_FLOPS, |lo, hi| {
        // SAFETY: disjoint row bands of `exps`/`denoms`, which outlive the
        // call.
        let eband = unsafe { ep.slice(lo * cols, (hi - lo) * cols) };
        let dband = unsafe { dp.slice(lo, hi - lo) };
        for r in lo..hi {
            let row = &ls[r * cols..(r + 1) * cols];
            let erow = &mut eband[(r - lo) * cols..(r - lo + 1) * cols];
            if fast {
                // Relaxed tier: SIMD max, vectorized exp, reassociated sum.
                let maxv = simd::max_slice(row);
                erow.copy_from_slice(row);
                dband[r - lo] = simd::softmax_exp_sum(erow, maxv);
                continue;
            }
            // Pass 1: row max (sequential fold, reference order).
            let maxv = row.iter().cloned().fold(f32::MIN, f32::max);
            // Pass 2: shifted exponentials and their ascending sum.
            let mut denom = 0.0f32;
            for (e, &x) in erow.iter_mut().zip(row) {
                *e = (x - maxv).exp();
                denom += *e;
            }
            dband[r - lo] = denom;
        }
    });
    // Loss: sequential ascending-row f64 accumulation (reference order),
    // reading one cached cell per row.
    let mut loss = 0.0f64;
    let es = exps.as_slice();
    for (r, &t) in targets.iter().enumerate() {
        let p = es[r * cols + t as usize] / denoms[r];
        loss += -(p.max(1e-30).ln()) as f64;
    }
    let mean = (loss / rows as f64) as f32;
    (mean, exps, denoms)
}

/// Backward of [`fused_softmax_xent_fwd`]: `dlogits[r][j] =
/// (softmax − onehot) · upstream / rows` in one pass.
///
/// Each row writes `(e / denom) · f` branch-free, then patches the single
/// target cell to `((e_t / denom) − 1) · f` — exactly the staged
/// `clone` / `set` / `scale_assign` composition.
pub fn fused_softmax_xent_bwd(
    exps: &Matrix,
    denoms: &[f32],
    targets: &[u32],
    upstream: f32,
) -> Matrix {
    let (rows, cols) = exps.shape();
    let n = rows as f32;
    let f = upstream / n;
    let mut dl = Matrix::zeros(rows, cols);
    let es = exps.as_slice();
    let dlp = BandPtr(dl.as_mut_slice().as_mut_ptr());
    par_bands(rows, rows * cols * AXPY_FLOPS, |lo, hi| {
        // SAFETY: disjoint row bands of `dl`, which outlives the call.
        let band = unsafe { dlp.slice(lo * cols, (hi - lo) * cols) };
        for r in lo..hi {
            let erow = &es[r * cols..(r + 1) * cols];
            let denom = denoms[r];
            let drow = &mut band[(r - lo) * cols..(r - lo + 1) * cols];
            for_each_lane(drow, |j| erow[j] / denom * f);
            let t = targets[r] as usize;
            drow[t] = (erow[t] / denom - 1.0) * f;
        }
    });
    dl
}

// ----- rope ------------------------------------------------------------------

/// Per-pair rotation frequencies for a head dimension:
/// `freqs[i] = theta_base^(−2i / hd)`, hoisted out of the row loops (the
/// staged path recomputes this `powf` per row — a pure function, so
/// hoisting preserves bits).
pub fn rope_freqs(hd: usize, theta_base: f32) -> Vec<f32> {
    (0..hd / 2)
        .map(|i| theta_base.powf(-2.0 * i as f32 / hd as f32))
        .collect()
}

/// Rotates one `heads · hd` row in place at (float) position `posf` using
/// precomputed [`rope_freqs`]; `inverse` applies the inverse rotation
/// (`−θ`, bit-identical to the staged `sign · θ` with `sign = ±1`).
pub fn rope_rotate_row(
    row: &mut [f32],
    posf: f32,
    heads: usize,
    hd: usize,
    freqs: &[f32],
    inverse: bool,
) {
    let half = hd / 2;
    for h in 0..heads {
        let base = h * hd;
        for (i, &fr) in freqs.iter().take(half).enumerate() {
            let theta = posf * fr;
            let (sin, cos) = if inverse { -theta } else { theta }.sin_cos();
            let a = row[base + 2 * i];
            let b = row[base + 2 * i + 1];
            row[base + 2 * i] = a * cos - b * sin;
            row[base + 2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Rotates one row at absolute position `pos` in the forward direction —
/// the per-row entry point of the KV-cached decode path.
pub fn rope_row(row: &mut [f32], pos: usize, heads: usize, hd: usize, theta_base: f32) {
    let freqs = rope_freqs(hd, theta_base);
    rope_rotate_row(row, pos as f32, heads, hd, &freqs, false);
}

/// Applies (or inverts) the rotary embedding in place over a
/// `(batch·seq) × (heads·head_dim)` matrix, row `r` at position `r % seq`
/// — the canonical implementation shared by the autograd graph and the
/// decode path.
pub fn rope_apply(x: &mut Matrix, seq: usize, heads: usize, theta_base: f32, inverse: bool) {
    let (rows, cols) = x.shape();
    let hd = cols / heads;
    let freqs = rope_freqs(hd, theta_base);
    let xp = BandPtr(x.as_mut_slice().as_mut_ptr());
    let freqs = &freqs;
    par_bands(rows, rows * cols * ROPE_FLOPS, |lo, hi| {
        // SAFETY: disjoint row bands of `x`, which outlives the call.
        let band = unsafe { xp.slice(lo * cols, (hi - lo) * cols) };
        for r in lo..hi {
            let row = &mut band[(r - lo) * cols..(r - lo + 1) * cols];
            rope_rotate_row(row, (r % seq) as f32, heads, hd, freqs, inverse);
        }
    });
}

// ----- optimizer chains ------------------------------------------------------

/// `y ← y · decay + alpha · x` in one pass — the optimizer's
/// weight-decay-then-axpy tail. With `decay = 1.0` the multiply is exact,
/// so the staged path's "skip the decay when weight_decay is zero" branch
/// collapses into one branch-free code path.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn fused_axpy_chain(y: &mut Matrix, decay: f32, alpha: f32, x: &Matrix) {
    assert_eq!(y.shape(), x.shape(), "fused_axpy_chain: shape mismatch");
    let (rows, cols) = y.shape();
    let xs = x.as_slice();
    let yp = BandPtr(y.as_mut_slice().as_mut_ptr());
    par_bands(rows, rows * cols * AXPY_FLOPS, |lo, hi| {
        // SAFETY: disjoint row bands of `y`, which outlives the call.
        let band = unsafe { yp.slice(lo * cols, (hi - lo) * cols) };
        let xband = &xs[lo * cols..hi * cols];
        for (yv, &xv) in band.iter_mut().zip(xband) {
            *yv = *yv * decay + alpha * xv;
        }
    });
}

/// One fused Adam moment-and-update pass: updates `m` and `v` in place and
/// writes the bias-corrected update into `upd` (reshaped to `g`).
///
/// Per element, in the staged order: `m ← β₁m + (1−β₁)g`,
/// `v ← β₂v + ((1−β₂)g)·g`, `upd ← (m/bc₁) / (√(v/bc₂) + ε)`.
#[allow(clippy::too_many_arguments)]
pub fn fused_adam_moments(
    m: &mut Matrix,
    v: &mut Matrix,
    upd: &mut Matrix,
    g: &Matrix,
    beta1: f32,
    beta2: f32,
    bc1: f32,
    bc2: f32,
    eps: f32,
) {
    assert_eq!(m.shape(), g.shape(), "fused_adam_moments: m/g mismatch");
    assert_eq!(v.shape(), g.shape(), "fused_adam_moments: v/g mismatch");
    let (rows, cols) = g.shape();
    upd.resize_to(rows, cols);
    let gs = g.as_slice();
    let mp = BandPtr(m.as_mut_slice().as_mut_ptr());
    let vp = BandPtr(v.as_mut_slice().as_mut_ptr());
    let up = BandPtr(upd.as_mut_slice().as_mut_ptr());
    par_bands(rows, rows * cols * ADAM_FLOPS, |lo, hi| {
        // SAFETY: disjoint row bands of `m`/`v`/`upd`, which outlive the
        // call.
        let mband = unsafe { mp.slice(lo * cols, (hi - lo) * cols) };
        let vband = unsafe { vp.slice(lo * cols, (hi - lo) * cols) };
        let uband = unsafe { up.slice(lo * cols, (hi - lo) * cols) };
        let gband = &gs[lo * cols..hi * cols];
        for i in 0..gband.len() {
            let gv = gband[i];
            let mv = beta1 * mband[i] + (1.0 - beta1) * gv;
            let vv = beta2 * vband[i] + (1.0 - beta2) * gv * gv;
            mband[i] = mv;
            vband[i] = vv;
            uband[i] = (mv / bc1) / ((vv / bc2).sqrt() + eps);
        }
    });
}

/// The full fused Adam parameter step: moments, bias correction, weight
/// decay, and the weight write in a single pass over the parameter —
/// without materializing the update matrix at all.
///
/// `decay` is the staged path's `1 − lr · weight_decay` (or exactly `1.0`
/// when weight decay is off). Per element, after the moment updates:
/// `w ← w · decay + (−lr) · (m/bc₁) / (√(v/bc₂) + ε)`.
#[allow(clippy::too_many_arguments)]
pub fn fused_adam_update(
    w: &mut Matrix,
    g: &Matrix,
    m: &mut Matrix,
    v: &mut Matrix,
    beta1: f32,
    beta2: f32,
    bc1: f32,
    bc2: f32,
    eps: f32,
    lr: f32,
    decay: f32,
) {
    assert_eq!(w.shape(), g.shape(), "fused_adam_update: w/g mismatch");
    assert_eq!(m.shape(), g.shape(), "fused_adam_update: m/g mismatch");
    assert_eq!(v.shape(), g.shape(), "fused_adam_update: v/g mismatch");
    let (rows, cols) = g.shape();
    let gs = g.as_slice();
    let wp = BandPtr(w.as_mut_slice().as_mut_ptr());
    let mp = BandPtr(m.as_mut_slice().as_mut_ptr());
    let vp = BandPtr(v.as_mut_slice().as_mut_ptr());
    let fast = fast_mode();
    par_bands(rows, rows * cols * ADAM_FLOPS, |lo, hi| {
        // SAFETY: disjoint row bands of `w`/`m`/`v`, which outlive the
        // call.
        let wband = unsafe { wp.slice(lo * cols, (hi - lo) * cols) };
        let mband = unsafe { mp.slice(lo * cols, (hi - lo) * cols) };
        let vband = unsafe { vp.slice(lo * cols, (hi - lo) * cols) };
        let gband = &gs[lo * cols..hi * cols];
        if fast {
            // Relaxed tier: FMA moment chain with vector sqrt (divides by
            // bc become multiplies by the reciprocal).
            simd::adam_weight_update(
                wband, gband, mband, vband, beta1, beta2, bc1, bc2, eps, lr, decay,
            );
            return;
        }
        for i in 0..gband.len() {
            let gv = gband[i];
            let mv = beta1 * mband[i] + (1.0 - beta1) * gv;
            let vv = beta2 * vband[i] + (1.0 - beta2) * gv * gv;
            mband[i] = mv;
            vband[i] = vv;
            let u = (mv / bc1) / ((vv / bc2).sqrt() + eps);
            wband[i] = wband[i] * decay + (-lr) * u;
        }
    });
}

/// Which channel geometry an APOLLO scaling factor applies along.
#[derive(Debug, Clone, Copy)]
pub enum ChannelScale<'a> {
    /// One factor for the whole tensor (APOLLO-Mini's norm-ratio scalar).
    Tensor(f32),
    /// One factor per column (`update[r][j] = g[r][j] · s[j]`).
    Cols(&'a [f32]),
    /// One factor per row (`update[r][j] = g[r][j] · s[r]`).
    Rows(&'a [f32]),
}

/// APOLLO's scaled-update construction in one pass: writes
/// `update ← (grad ⊙ s) · alpha` (reshaping `update` to `grad`) and
/// returns its Frobenius norm.
///
/// Replaces the staged `copy_from` → `scale_cols`/`scale_rows`/
/// `scale_assign` → `scale_assign(alpha)` → `fro_norm` chain (four to five
/// traversals). The norm accumulates in flat ascending `f64` order — the
/// exact [`Matrix::fro_norm`] reduction — and therefore runs serially; on
/// the pooled path it is a second, read-only sweep of the update.
///
/// # Panics
///
/// Panics if a channel-scale length disagrees with `grad`'s shape.
pub fn fused_apollo_scale(
    update: &mut Matrix,
    grad: &Matrix,
    scale: ChannelScale<'_>,
    alpha: f32,
) -> f32 {
    let (rows, cols) = grad.shape();
    match scale {
        ChannelScale::Cols(s) => {
            assert_eq!(
                s.len(),
                cols,
                "fused_apollo_scale: need one factor per column"
            );
        }
        ChannelScale::Rows(s) => {
            assert_eq!(s.len(), rows, "fused_apollo_scale: need one factor per row");
        }
        ChannelScale::Tensor(_) => {}
    }
    update.resize_to(rows, cols);
    let gs = grad.as_slice();
    let threads = current_threads();
    let flops = rows * cols * SCALE_NORM_FLOPS;
    let parallel = should_parallelize(threads, rows, flops);
    let write_row = |r: usize, out: &mut [f32]| {
        let grow = &gs[r * cols..(r + 1) * cols];
        match scale {
            ChannelScale::Tensor(s) => for_each_lane(out, |j| grow[j] * s * alpha),
            ChannelScale::Cols(s) => for_each_lane(out, |j| grow[j] * s[j] * alpha),
            ChannelScale::Rows(s) => {
                let sr = s[r];
                for_each_lane(out, |j| grow[j] * sr * alpha);
            }
        }
    };
    if fast_mode() {
        // Relaxed tier: banded write plus one reassociated f32 SIMD
        // norm sweep instead of the latency-bound serial f64 chain.
        let up = BandPtr(update.as_mut_slice().as_mut_ptr());
        par_bands(rows, flops, |lo, hi| {
            // SAFETY: disjoint row bands of `update`, which outlives the
            // call.
            let band = unsafe { up.slice(lo * cols, (hi - lo) * cols) };
            for r in lo..hi {
                write_row(r, &mut band[(r - lo) * cols..(r - lo + 1) * cols]);
            }
        });
        simd::sum_squares(update.as_slice()).sqrt()
    } else if parallel {
        let up = BandPtr(update.as_mut_slice().as_mut_ptr());
        par_bands(rows, flops, |lo, hi| {
            // SAFETY: disjoint row bands of `update`, which outlives the
            // call.
            let band = unsafe { up.slice(lo * cols, (hi - lo) * cols) };
            for r in lo..hi {
                write_row(r, &mut band[(r - lo) * cols..(r - lo + 1) * cols]);
            }
        });
        // Norm: flat ascending f64 reduction (fro_norm's exact order).
        let mut acc = 0.0f64;
        for &u in update.as_slice() {
            acc += (u as f64) * (u as f64);
        }
        acc.sqrt() as f32
    } else {
        let mut acc = 0.0f64;
        let us = update.as_mut_slice();
        for r in 0..rows {
            let out = &mut us[r * cols..(r + 1) * cols];
            write_row(r, out);
            for &u in out.iter() {
                acc += (u as f64) * (u as f64);
            }
        }
        acc.sqrt() as f32
    }
}

// ----- unfused references ----------------------------------------------------

/// The staged (unfused) implementations the fused kernels replace, built
/// from the same `Matrix` primitives the seed code used. They are the
/// ground truth of the bit-identity property tests and the "unfused" arm
/// of the `perf_kernels` fused section; keep their float-op order frozen.
pub mod reference {
    use super::sigmoid;
    use crate::Matrix;

    /// Staged RMSNorm forward (the autograd op's original loop).
    pub fn rmsnorm_fwd(x: &Matrix, gain: &Matrix, eps: f32) -> (Matrix, Vec<f32>) {
        let n = x.cols() as f32;
        let mut inv_rms = Vec::with_capacity(x.rows());
        let mut y = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let ms = row.iter().map(|&v| v * v).sum::<f32>() / n;
            let inv = 1.0 / (ms + eps).sqrt();
            inv_rms.push(inv);
            let out = y.row_mut(r);
            for (j, (&v, &g)) in row.iter().zip(gain.row(0)).enumerate() {
                out[j] = v * inv * g;
            }
        }
        (y, inv_rms)
    }

    /// Staged RMSNorm backward (per-element `get`/`set`, three loops per
    /// row — the autograd op's original body).
    pub fn rmsnorm_bwd(
        x: &Matrix,
        gain: &Matrix,
        gout: &Matrix,
        inv_rms: &[f32],
    ) -> (Matrix, Matrix) {
        let n = x.cols() as f32;
        let mut dx = Matrix::zeros(x.rows(), x.cols());
        let mut dg = Matrix::zeros(1, x.cols());
        for (r, &inv) in inv_rms.iter().enumerate() {
            let xrow = x.row(r);
            let grow = gout.row(r);
            let mut t = 0.0f32;
            for j in 0..x.cols() {
                t += grow[j] * gain.get(0, j) * xrow[j];
            }
            let dxrow = dx.row_mut(r);
            for j in 0..x.cols() {
                dxrow[j] = grow[j] * gain.get(0, j) * inv - inv * inv * inv / n * xrow[j] * t;
            }
            for j in 0..x.cols() {
                let cur = dg.get(0, j);
                dg.set(0, j, cur + grow[j] * xrow[j] * inv);
            }
        }
        (dx, dg)
    }

    /// Staged SwiGLU forward: silu `map` then `hadamard` (two temporaries).
    pub fn swiglu_fwd(a: &Matrix, b: &Matrix) -> Matrix {
        let silu = a.map(|x| x * sigmoid(x));
        silu.hadamard(b)
    }

    /// Staged SwiGLU backward: mul backward (`gout ⊙ b`, `gout ⊙ silu(a)`)
    /// feeding silu backward.
    pub fn swiglu_bwd(a: &Matrix, b: &Matrix, gout: &Matrix) -> (Matrix, Matrix) {
        let silu = a.map(|x| x * sigmoid(x));
        let upstream = gout.hadamard(b);
        let da = a.zip_map(&upstream, |x, g| {
            let s = sigmoid(x);
            g * s * (1.0 + x * (1.0 - s))
        });
        let db = gout.hadamard(&silu);
        (da, db)
    }

    /// Staged softmax cross-entropy forward: normalized probabilities and
    /// the mean loss (the autograd op's original five-pass body). Returns
    /// `(mean_loss, probs)`.
    pub fn softmax_xent_fwd(logits: &Matrix, targets: &[u32]) -> (f32, Matrix) {
        let mut probs = Matrix::zeros(logits.rows(), logits.cols());
        let mut loss = 0.0f64;
        for (r, &target) in targets.iter().enumerate() {
            let row = logits.row(r);
            let t = target as usize;
            let maxv = row.iter().cloned().fold(f32::MIN, f32::max);
            let mut denom = 0.0f32;
            let prow = probs.row_mut(r);
            for (j, &x) in row.iter().enumerate() {
                let e = (x - maxv).exp();
                prow[j] = e;
                denom += e;
            }
            for pj in prow.iter_mut() {
                *pj /= denom;
            }
            loss += -(prow[t].max(1e-30).ln()) as f64;
        }
        let mean = (loss / logits.rows() as f64) as f32;
        (mean, probs)
    }

    /// Staged softmax cross-entropy backward from the normalized `probs`.
    pub fn softmax_xent_bwd(probs: &Matrix, targets: &[u32], upstream: f32) -> Matrix {
        let n = probs.rows() as f32;
        let mut dl = probs.clone();
        for (r, &t) in targets.iter().enumerate() {
            let cur = dl.get(r, t as usize);
            dl.set(r, t as usize, cur - 1.0);
        }
        dl.scale_assign(upstream / n);
        dl
    }

    /// Staged decay + axpy: `scale_assign` (skipped at `decay == 1`) then
    /// `axpy`.
    pub fn axpy_chain(y: &mut Matrix, decay: f32, alpha: f32, x: &Matrix) {
        if decay != 1.0 {
            y.scale_assign(decay);
        }
        y.axpy(alpha, x);
    }

    /// Staged Adam moments: `ema_assign`, `ema_square_assign`, then the
    /// bias-corrected `zip_map_from`.
    #[allow(clippy::too_many_arguments)]
    pub fn adam_moments(
        m: &mut Matrix,
        v: &mut Matrix,
        upd: &mut Matrix,
        g: &Matrix,
        beta1: f32,
        beta2: f32,
        bc1: f32,
        bc2: f32,
        eps: f32,
    ) {
        m.ema_assign(beta1, g);
        v.ema_square_assign(beta2, g);
        upd.zip_map_from(m, v, |m, v| (m / bc1) / ((v / bc2).sqrt() + eps));
    }

    /// Staged full Adam step: moments + decay + axpy via an explicit
    /// update matrix.
    #[allow(clippy::too_many_arguments)]
    pub fn adam_update(
        w: &mut Matrix,
        g: &Matrix,
        m: &mut Matrix,
        v: &mut Matrix,
        beta1: f32,
        beta2: f32,
        bc1: f32,
        bc2: f32,
        eps: f32,
        lr: f32,
        decay: f32,
    ) {
        let mut upd = Matrix::zeros(0, 0);
        adam_moments(m, v, &mut upd, g, beta1, beta2, bc1, bc2, eps);
        axpy_chain(w, decay, -lr, &upd);
        upd.recycle();
    }

    /// Staged APOLLO update construction: `copy_from` + channel scaling +
    /// `scale_assign(alpha)` + `fro_norm` (four to five traversals).
    pub fn apollo_scale(
        update: &mut Matrix,
        grad: &Matrix,
        scale: super::ChannelScale<'_>,
        alpha: f32,
    ) -> f32 {
        update.copy_from(grad);
        match scale {
            super::ChannelScale::Tensor(s) => update.scale_assign(s),
            super::ChannelScale::Cols(s) => update.scale_cols(s),
            super::ChannelScale::Rows(s) => update.scale_rows(s),
        }
        update.scale_assign(alpha);
        update.fro_norm()
    }

    /// Staged RoPE (the autograd graph's original in-place rotation).
    pub fn rope_apply(x: &mut Matrix, seq: usize, heads: usize, theta_base: f32, inverse: bool) {
        let hd = x.cols() / heads;
        let half = hd / 2;
        let sign = if inverse { -1.0f32 } else { 1.0 };
        for r in 0..x.rows() {
            let pos = (r % seq) as f32;
            let row = x.row_mut(r);
            for h in 0..heads {
                let base = h * hd;
                for i in 0..half {
                    let theta = pos * theta_base.powf(-2.0 * i as f32 / hd as f32);
                    let (sin, cos) = (sign * theta).sin_cos();
                    let a = row[base + 2 * i];
                    let b = row[base + 2 * i + 1];
                    row[base + 2 * i] = a * cos - b * sin;
                    row[base + 2 * i + 1] = a * sin + b * cos;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rope_freqs_match_inline_powf() {
        let hd = 8;
        let base = 10_000.0f32;
        let freqs = rope_freqs(hd, base);
        for (i, &f) in freqs.iter().enumerate() {
            let want = base.powf(-2.0 * i as f32 / hd as f32);
            assert_eq!(f.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn axpy_chain_decay_one_matches_skipped_decay() {
        // `y * 1.0` is bitwise `y`, so the fused branch-free path equals
        // the staged "skip scale_assign when weight decay is off" branch.
        let mut rng = crate::Rng::seed_from_u64(7);
        let x = Matrix::randn(3, 4, &mut rng);
        let mut fused_y = Matrix::randn(3, 4, &mut rng);
        let mut staged_y = fused_y.clone();
        fused_axpy_chain(&mut fused_y, 1.0, -0.01, &x);
        staged_y.axpy(-0.01, &x);
        for (a, b) in fused_y.as_slice().iter().zip(staged_y.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn apollo_scale_rejects_bad_channel_lengths() {
        let g = Matrix::zeros(2, 3);
        let mut u = Matrix::zeros(0, 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fused_apollo_scale(&mut u, &g, ChannelScale::Cols(&[1.0, 2.0]), 1.0)
        }));
        assert!(r.is_err());
    }
}
