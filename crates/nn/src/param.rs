//! Named trainable parameters.

use apollo_tensor::Matrix;

/// What role a parameter plays; optimizers use this to decide whether the
/// low-rank projection path applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// 2-D projection/MLP weight — eligible for GaLore/APOLLO low-rank
    /// treatment.
    Projectable,
    /// Norm gain or other 1-D parameter — always dense AdamW, as in the
    /// official APOLLO/GaLore implementations.
    Norm,
    /// Embedding or LM-head table — dense AdamW by default (matching the
    /// official implementations, which only project attention/MLP weights).
    Embedding,
}

/// A named parameter tensor with its training metadata.
#[derive(Debug, Clone)]
pub struct Param {
    /// Dotted path, e.g. `layers.0.attn.wq`.
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Role of the tensor (drives optimizer routing).
    pub kind: ParamKind,
    /// Frozen parameters receive no updates (LoRA backbones).
    pub trainable: bool,
}

impl Param {
    /// Creates a trainable parameter.
    pub fn new(name: impl Into<String>, value: Matrix, kind: ParamKind) -> Self {
        Param {
            name: name.into(),
            value,
            kind,
            trainable: true,
        }
    }

    /// Creates a frozen parameter.
    pub fn frozen(name: impl Into<String>, value: Matrix, kind: ParamKind) -> Self {
        Param {
            name: name.into(),
            value,
            kind,
            trainable: false,
        }
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let p = Param::new("w", Matrix::zeros(2, 3), ParamKind::Projectable);
        assert!(p.trainable);
        assert_eq!(p.len(), 6);
        let f = Param::frozen("w0", Matrix::zeros(1, 1), ParamKind::Projectable);
        assert!(!f.trainable);
    }
}
