//! Fast-tier training parity: a short pretrain run under
//! `NumericsMode::Fast` must land within a small loss delta of the exact
//! run from identical init and data. The fast tier reassociates every
//! reduction, so the trajectories diverge bit-wise almost immediately —
//! the contract is that the *optimization* is unaffected, not the bits.

use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_optim::Apollo;
use apollo_tensor::{set_numerics_override, NumericsMode, Rng};
use apollo_train::{pretrain, TrainConfig};

/// Runs a short APOLLO pretrain under the given numerics mode and returns
/// the per-step losses and the final loss.
fn run_with(mode: NumericsMode) -> (Vec<f32>, f32) {
    set_numerics_override(Some(mode));
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(7);
    let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, 2, cfg.max_seq);
    let mut opt = Apollo::new(4, 5);
    let log = pretrain(&mut model, &mut opt, &mut batcher, &TrainConfig::quick(20));
    set_numerics_override(None);
    let losses: Vec<f32> = log.train_losses.iter().map(|&(_, l)| l).collect();
    let last = *losses.last().expect("no losses recorded");
    (losses, last)
}

#[test]
fn fast_mode_pretrain_matches_exact_loss_within_tolerance() {
    let (exact_losses, exact_final) = run_with(NumericsMode::Exact);
    let (fast_losses, fast_final) = run_with(NumericsMode::Fast);
    assert_eq!(exact_losses.len(), fast_losses.len());

    // Step losses track closely throughout, not just at the end: a fast
    // kernel with a real defect (dropped tail lanes, wrong reduction)
    // shows up as divergence within a few steps.
    for (step, (e, f)) in exact_losses.iter().zip(&fast_losses).enumerate() {
        assert!(
            (e - f).abs() <= 0.05 * e.abs().max(1.0),
            "step {step}: exact {e} vs fast {f}"
        );
    }
    assert!(
        (exact_final - fast_final).abs() <= 0.02 * exact_final.abs().max(1.0),
        "final loss: exact {exact_final} vs fast {fast_final}"
    );
    // Both runs actually train.
    assert!(exact_final < exact_losses[0], "exact run did not improve");
    assert!(fast_final < fast_losses[0], "fast run did not improve");
}
