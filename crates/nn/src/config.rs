//! Model geometries: the paper's Table 8 configurations plus CPU-scale
//! proxies used for the actual training runs.

use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of a LLaMA-style decoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"llama-60m"` or `"tiny-60m"`.
    pub name: String,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// SwiGLU intermediate dimension.
    pub intermediate: usize,
    /// Number of attention heads (`hidden % n_heads == 0`).
    pub n_heads: usize,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Training context length.
    pub max_seq: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
}

impl ModelConfig {
    /// Builds a config after validating divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `n_heads` or the head dim is
    /// odd (RoPE needs even head dims).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        vocab_size: usize,
        hidden: usize,
        intermediate: usize,
        n_heads: usize,
        n_layers: usize,
        max_seq: usize,
    ) -> Self {
        // Geometry constraints are only enforced for configs that are
        // actually trained (see `LlamaModel::new`); the paper's Table 8
        // geometries (e.g. LLaMA-1B with 24 heads over hidden 2048) are used
        // purely by the analytic memory model.
        ModelConfig {
            name: name.to_string(),
            vocab_size,
            hidden,
            intermediate,
            n_heads,
            n_layers,
            max_seq,
            rope_theta: 10_000.0,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.n_heads
    }

    // ----- Paper geometries (Table 8; vocab 32000, seq 256) ------------------

    /// LLaMA-60M (Table 8).
    pub fn llama_60m() -> Self {
        Self::new("llama-60m", 32_000, 512, 1376, 8, 8, 256)
    }

    /// LLaMA-130M (Table 8).
    pub fn llama_130m() -> Self {
        Self::new("llama-130m", 32_000, 768, 2048, 12, 12, 256)
    }

    /// LLaMA-350M (Table 8).
    pub fn llama_350m() -> Self {
        Self::new("llama-350m", 32_000, 1024, 2736, 16, 24, 256)
    }

    /// LLaMA-1B (Table 8).
    pub fn llama_1b() -> Self {
        Self::new("llama-1b", 32_000, 2048, 5461, 24, 32, 256)
    }

    /// LLaMA-7B (Table 8).
    pub fn llama_7b() -> Self {
        Self::new("llama-7b", 32_000, 4096, 11_008, 32, 32, 256)
    }

    /// LLaMA-13B (standard geometry; used for the §5.3 DDP claim).
    pub fn llama_13b() -> Self {
        Self::new("llama-13b", 32_000, 5120, 13_824, 40, 40, 256)
    }

    // ----- CPU proxies --------------------------------------------------------
    //
    // Same depth/width *ratios* as the paper models (width ÷ 8, depth ÷ 4,
    // vocab 512, seq 64) so layer shapes keep m ≤ n orientations and the
    // relative model ordering. These are what the experiment harness trains.

    /// CPU proxy for LLaMA-60M.
    pub fn tiny_60m() -> Self {
        Self::new("tiny-60m", 512, 64, 172, 4, 2, 64)
    }

    /// CPU proxy for LLaMA-130M.
    pub fn tiny_130m() -> Self {
        Self::new("tiny-130m", 512, 96, 256, 4, 3, 64)
    }

    /// CPU proxy for LLaMA-350M.
    pub fn tiny_350m() -> Self {
        Self::new("tiny-350m", 512, 128, 344, 8, 4, 64)
    }

    /// CPU proxy for LLaMA-1B.
    pub fn tiny_1b() -> Self {
        Self::new("tiny-1b", 512, 192, 512, 8, 5, 64)
    }

    /// CPU proxy for LLaMA-7B.
    pub fn tiny_7b() -> Self {
        Self::new("tiny-7b", 512, 256, 688, 8, 6, 64)
    }

    /// Minimal config for unit tests (trains in milliseconds).
    pub fn test_tiny() -> Self {
        Self::new("test-tiny", 64, 16, 32, 2, 2, 8)
    }

    /// The default projection rank the paper uses for this geometry
    /// (one-quarter of the hidden dimension).
    pub fn default_rank(&self) -> usize {
        (self.hidden / 4).max(1)
    }

    /// Shapes of every weight tensor `(name, rows, cols)`, in declaration
    /// order. Linear weights are stored `[in, out]` (`y = x·W`).
    ///
    /// Used both by the model constructor and by the analytic memory model,
    /// so the two can never disagree.
    pub fn weight_shapes(&self) -> Vec<(String, usize, usize)> {
        let h = self.hidden;
        let mut shapes = vec![("embed.weight".to_string(), self.vocab_size, h)];
        for l in 0..self.n_layers {
            let p = |s: &str| format!("layers.{l}.{s}");
            shapes.push((p("attn_norm.gain"), 1, h));
            shapes.push((p("attn.wq"), h, h));
            shapes.push((p("attn.wk"), h, h));
            shapes.push((p("attn.wv"), h, h));
            shapes.push((p("attn.wo"), h, h));
            shapes.push((p("mlp_norm.gain"), 1, h));
            shapes.push((p("mlp.gate"), h, self.intermediate));
            shapes.push((p("mlp.up"), h, self.intermediate));
            shapes.push((p("mlp.down"), self.intermediate, h));
        }
        shapes.push(("final_norm.gain".to_string(), 1, h));
        shapes.push(("lm_head.weight".to_string(), h, self.vocab_size));
        shapes
    }

    /// Total parameter count of the dense model.
    pub fn num_params(&self) -> usize {
        self.weight_shapes().iter().map(|(_, r, c)| r * c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_param_counts_are_in_the_right_ballpark() {
        // The names are nominal; check the count lands near the label.
        let m60 = ModelConfig::llama_60m().num_params() as f64;
        assert!((40e6..80e6).contains(&m60), "60m: {m60}");
        // With an untied 32k-vocab head the nominal "1B" geometry carries
        // ~1.7B parameters; the label refers to the non-embedding trunk.
        let m1b = ModelConfig::llama_1b().num_params() as f64;
        assert!((0.9e9..2.0e9).contains(&m1b), "1b: {m1b}");
        let m7b = ModelConfig::llama_7b().num_params() as f64;
        assert!((6e9..8e9).contains(&m7b), "7b: {m7b}");
    }

    #[test]
    fn param_count_monotone_in_model_size() {
        let sizes: Vec<usize> = [
            ModelConfig::llama_60m(),
            ModelConfig::llama_130m(),
            ModelConfig::llama_350m(),
            ModelConfig::llama_1b(),
            ModelConfig::llama_7b(),
            ModelConfig::llama_13b(),
        ]
        .iter()
        .map(ModelConfig::num_params)
        .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    fn tiny_proxies_keep_ordering() {
        let sizes: Vec<usize> = [
            ModelConfig::tiny_60m(),
            ModelConfig::tiny_130m(),
            ModelConfig::tiny_350m(),
            ModelConfig::tiny_1b(),
            ModelConfig::tiny_7b(),
        ]
        .iter()
        .map(ModelConfig::num_params)
        .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    fn weight_shapes_cover_all_layers() {
        let cfg = ModelConfig::test_tiny();
        let shapes = cfg.weight_shapes();
        // embed + final norm + head + 9 per layer (2 norms + 4 attn + 3 mlp).
        assert_eq!(shapes.len(), 3 + 9 * cfg.n_layers);
        assert!(shapes.iter().any(|(n, _, _)| n == "layers.1.mlp.down"));
    }

    #[test]
    fn head_dim_of_trainable_configs_is_even() {
        for cfg in [
            ModelConfig::test_tiny(),
            ModelConfig::tiny_60m(),
            ModelConfig::tiny_130m(),
            ModelConfig::tiny_350m(),
            ModelConfig::tiny_1b(),
            ModelConfig::tiny_7b(),
        ] {
            assert_eq!(cfg.hidden % cfg.n_heads, 0, "{}", cfg.name);
            assert_eq!(cfg.head_dim() % 2, 0, "{}", cfg.name);
        }
    }

    #[test]
    fn default_rank_is_quarter_hidden() {
        assert_eq!(ModelConfig::llama_60m().default_rank(), 128);
        assert_eq!(ModelConfig::tiny_60m().default_rank(), 16);
    }
}
