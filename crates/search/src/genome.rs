//! The searchable hyper-parameter genome and its mutation operator.
//!
//! A [`Genome`] is the complete knob set one population member trains
//! under: optimizer family, projector rank, gradient-scale α, projector
//! refresh period, and the LR schedule's peak / warmup fraction. Mutation
//! is a pure function of `(genome, rng)`, so a search driven by a seeded
//! [`Rng`] is bit-reproducible.

use apollo_nn::ModelConfig;
use apollo_tensor::Rng;
use serde::{Deserialize, Serialize};

/// Which optimizer a member trains with. The three families cover the
/// paper's main comparison: APOLLO (channel-wise, rank r), APOLLO-Mini
/// (tensor-wise, rank 1), and the channel-wise AdamW control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptFamily {
    /// Channel-wise APOLLO at the genome's rank.
    Apollo,
    /// Rank-1 tensor-wise APOLLO-Mini (α defaults to √(hidden/4)).
    ApolloMini,
    /// Channel-wise AdamW with the norm-growth limiter (full-rank control;
    /// the rank/α/refresh knobs are inert for this family).
    AdamWChannelwise,
}

impl OptFamily {
    /// Stable label used in lineage strings and reports.
    pub fn label(self) -> &'static str {
        match self {
            OptFamily::Apollo => "apollo",
            OptFamily::ApolloMini => "apollo-mini",
            OptFamily::AdamWChannelwise => "adamw-channelwise",
        }
    }
}

/// One member's complete hyper-parameter assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    /// Optimizer family.
    pub family: OptFamily,
    /// Projector rank r (ignored by `AdamWChannelwise`; 1 for Mini).
    pub rank: usize,
    /// Gradient scale α.
    pub alpha: f32,
    /// Projector refresh period T in steps.
    pub update_freq: usize,
    /// Peak learning rate of the warmup+cosine schedule.
    pub peak_lr: f32,
    /// Warmup fraction of the schedule.
    pub warmup_frac: f32,
}

/// APOLLO-Mini's paper default α = √(hidden/4) for a given model width.
pub fn mini_alpha(hidden: usize) -> f32 {
    (((hidden / 4).max(1)) as f32).sqrt()
}

impl Genome {
    /// The family's paper-default genome for `model` (LR knobs at the
    /// APOLLO paper defaults: peak 0.01, 10% warmup).
    pub fn seed_for(family: OptFamily, model: &ModelConfig) -> Genome {
        let (rank, alpha) = match family {
            OptFamily::Apollo => (model.default_rank(), 1.0),
            OptFamily::ApolloMini => (1, mini_alpha(model.hidden)),
            OptFamily::AdamWChannelwise => (0, 1.0),
        };
        Genome {
            family,
            rank,
            alpha,
            update_freq: 200,
            peak_lr: 0.01,
            warmup_frac: 0.1,
        }
    }

    /// The static Fig. 4-style comparison grid: APOLLO at the default rank,
    /// APOLLO at half rank, APOLLO-Mini, and the channel-wise AdamW
    /// control. The search's initial population cycles this grid, so every
    /// static configuration is also an evolutionary starting point.
    pub fn static_grid(model: &ModelConfig) -> Vec<Genome> {
        let half = Genome {
            rank: (model.default_rank() / 2).max(1),
            ..Genome::seed_for(OptFamily::Apollo, model)
        };
        vec![
            Genome::seed_for(OptFamily::Apollo, model),
            half,
            Genome::seed_for(OptFamily::ApolloMini, model),
            Genome::seed_for(OptFamily::AdamWChannelwise, model),
        ]
    }

    /// Short human-readable label for tables and traces.
    pub fn label(&self) -> String {
        match self.family {
            OptFamily::AdamWChannelwise => {
                format!("{} lr={}", self.family.label(), self.peak_lr)
            }
            _ => format!(
                "{} r={} a={} T={} lr={}",
                self.family.label(),
                self.rank,
                self.alpha,
                self.update_freq,
                self.peak_lr
            ),
        }
    }

    /// Whether a member with `self`'s optimizer state can keep that state
    /// verbatim when re-configured to `other`. The moment layout depends on
    /// the family and (for APOLLO families) the rank; α, refresh period,
    /// and LR knobs transplant freely.
    pub fn transplant_ok(&self, other: &Genome) -> bool {
        self.family == other.family
            && (self.family == OptFamily::AdamWChannelwise || self.rank == other.rank)
    }

    /// Draws a mutated child genome. Deterministic in `(self, rng state)`;
    /// always changes at least one knob. Returns the child and a
    /// human-readable list of the changes for the lineage log.
    pub fn mutate(&self, rng: &mut Rng, model: &ModelConfig) -> (Genome, Vec<String>) {
        let mut g = self.clone();
        let mut changes = Vec::new();

        // Rare family hop (1 in 8): restart from the target family's seed
        // genome but carry the evolved LR knobs along.
        if rng.below(8) == 0 {
            let next = match g.family {
                OptFamily::Apollo => OptFamily::ApolloMini,
                OptFamily::ApolloMini => OptFamily::AdamWChannelwise,
                OptFamily::AdamWChannelwise => OptFamily::Apollo,
            };
            changes.push(format!("family {} -> {}", g.family.label(), next.label()));
            let carried = (g.peak_lr, g.warmup_frac);
            g = Genome::seed_for(next, model);
            g.peak_lr = carried.0;
            g.warmup_frac = carried.1;
        }

        // Peak LR: the paper's most sensitive knob, perturbed half the time.
        if rng.below(2) == 0 {
            let old = g.peak_lr;
            let factor = if rng.below(2) == 0 { 1.25 } else { 0.8 };
            g.peak_lr = (old * factor).clamp(1e-4, 0.3);
            changes.push(format!("peak_lr {} -> {}", old, g.peak_lr));
        }
        // Warmup fraction, multiplicative walk on [0.02, 0.3].
        if rng.below(4) == 0 {
            let old = g.warmup_frac;
            let factor = if rng.below(2) == 0 { 1.5 } else { 0.75 };
            g.warmup_frac = (old * factor).clamp(0.02, 0.3);
            changes.push(format!("warmup_frac {} -> {}", old, g.warmup_frac));
        }
        if g.family != OptFamily::AdamWChannelwise {
            // Gradient scale α.
            if rng.below(2) == 0 {
                let old = g.alpha;
                let factor = if rng.below(2) == 0 { 1.25 } else { 0.8 };
                g.alpha = (old * factor).clamp(0.05, 64.0);
                changes.push(format!("alpha {} -> {}", old, g.alpha));
            }
            // Projector refresh period, doubling walk on [10, 400].
            if rng.below(3) == 0 {
                let old = g.update_freq;
                g.update_freq = if rng.below(2) == 0 {
                    (old * 2).min(400)
                } else {
                    (old / 2).max(10)
                };
                if g.update_freq != old {
                    changes.push(format!("update_freq {} -> {}", old, g.update_freq));
                }
            }
            // Rank doubling/halving (full APOLLO only; Mini is pinned to 1).
            if g.family == OptFamily::Apollo && rng.below(4) == 0 {
                let old = g.rank;
                let max_rank = (model.hidden / 2).max(1);
                g.rank = if rng.below(2) == 0 {
                    (old * 2).min(max_rank)
                } else {
                    (old / 2).max(1)
                };
                if g.rank != old {
                    changes.push(format!("rank {} -> {}", old, g.rank));
                }
            }
        }

        // Exploration must move: if every coin came up "keep", nudge LR.
        if changes.is_empty() {
            let old = g.peak_lr;
            g.peak_lr = (old * 1.1).clamp(1e-4, 0.3);
            changes.push(format!("peak_lr {} -> {}", old, g.peak_lr));
        }
        (g, changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_and_always_changes_something() {
        let model = ModelConfig::test_tiny();
        let base = Genome::seed_for(OptFamily::Apollo, &model);
        for seed in 0..64u64 {
            let (a, ca) = base.mutate(&mut Rng::seed_from_u64(seed), &model);
            let (b, cb) = base.mutate(&mut Rng::seed_from_u64(seed), &model);
            assert_eq!(a, b, "same seed must give the same child");
            assert_eq!(ca, cb);
            assert_ne!(a, base, "mutation must change at least one knob");
            assert!(!ca.is_empty());
            assert!(a.rank <= (model.hidden / 2).max(1));
            assert!(a.update_freq >= 1);
            assert!(a.peak_lr > 0.0 && a.peak_lr.is_finite());
        }
    }

    #[test]
    fn transplant_rules_track_state_layout() {
        let model = ModelConfig::test_tiny();
        let a = Genome::seed_for(OptFamily::Apollo, &model);
        // α / refresh / LR changes keep the moment layout.
        let mut tweaked = a.clone();
        tweaked.alpha = 2.0;
        tweaked.update_freq = 50;
        tweaked.peak_lr = 0.02;
        assert!(a.transplant_ok(&tweaked));
        // Rank changes re-shape the low-rank moments.
        let mut reranked = a.clone();
        reranked.rank = a.rank * 2;
        assert!(!a.transplant_ok(&reranked));
        // Family changes swap the optimizer entirely...
        let mini = Genome::seed_for(OptFamily::ApolloMini, &model);
        assert!(!a.transplant_ok(&mini));
        // ...except AdamW, whose state ignores the projector knobs.
        let adamw = Genome::seed_for(OptFamily::AdamWChannelwise, &model);
        let mut adamw2 = adamw.clone();
        adamw2.rank = 7;
        adamw2.peak_lr = 0.005;
        assert!(adamw.transplant_ok(&adamw2));
    }

    #[test]
    fn static_grid_covers_all_three_families() {
        let model = ModelConfig::test_tiny();
        let grid = Genome::static_grid(&model);
        assert_eq!(grid.len(), 4);
        assert!(grid.iter().any(|g| g.family == OptFamily::Apollo));
        assert!(grid.iter().any(|g| g.family == OptFamily::ApolloMini));
        assert!(grid.iter().any(|g| g.family == OptFamily::AdamWChannelwise));
        let json = serde_json::to_string(&grid).unwrap();
        let back: Vec<Genome> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, grid);
    }
}
