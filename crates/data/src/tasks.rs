//! Synthetic sequence-classification tasks standing in for the paper's
//! fine-tuning benchmarks (commonsense reasoning, Table 4; MMLU, Table 5).
//!
//! Each task hides its label in *marker tokens*: a sequence is corpus noise
//! with `k` markers of the true class injected at random positions (and a
//! few distractor markers of other classes). The label is the class whose
//! markers dominate — recoverable by a transformer that learns to count
//! class-specific tokens, not by a bias-only model.

use apollo_tensor::Rng;
use serde::{Deserialize, Serialize};

use crate::corpus::{CorpusConfig, SyntheticCorpus};

/// Parameters of one synthetic classification task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskConfig {
    /// Task name (mirrors the paper's benchmark names).
    pub name: String,
    /// Number of classes. Labels are the token ids `0..n_classes`.
    pub n_classes: usize,
    /// Vocabulary size (must match the model).
    pub vocab_size: usize,
    /// Sequence length.
    pub seq: usize,
    /// Marker tokens of the true class injected per sequence.
    pub true_markers: usize,
    /// Distractor markers (of random other classes) per sequence.
    pub distractors: usize,
    /// Task seed: defines marker-token assignments and the example stream.
    pub seed: u64,
}

/// Generator of labelled examples for one task.
///
/// # Example
///
/// ```
/// use apollo_data::{TaskConfig, TaskGen};
///
/// let cfg = TaskConfig {
///     name: "demo".into(),
///     n_classes: 2,
///     vocab_size: 64,
///     seq: 16,
///     true_markers: 4,
///     distractors: 1,
///     seed: 1,
/// };
/// let mut task = TaskGen::new(cfg);
/// let (tokens, labels) = task.sample(8);
/// assert_eq!(tokens.len(), 8 * 16);
/// assert!(labels.iter().all(|&l| l < 2));
/// ```
#[derive(Debug, Clone)]
pub struct TaskGen {
    cfg: TaskConfig,
    corpus: SyntheticCorpus,
    /// `marker_tokens[c]` are the tokens signalling class `c`.
    marker_tokens: Vec<Vec<u32>>,
    rng: Rng,
    stream: u64,
}

impl TaskGen {
    /// Builds the task: assigns each class a disjoint set of marker tokens
    /// drawn from the upper half of the vocabulary (so they are rare in
    /// corpus noise).
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary cannot fit the classes and marker sets.
    pub fn new(cfg: TaskConfig) -> Self {
        const MARKERS_PER_CLASS: usize = 3;
        assert!(cfg.n_classes >= 2, "need at least two classes");
        assert!(
            cfg.vocab_size / 2 > cfg.n_classes * MARKERS_PER_CLASS + cfg.n_classes,
            "vocab too small for {} classes",
            cfg.n_classes
        );
        let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x7A5C);
        // Markers come from the rare upper half of the Zipf vocabulary,
        // disjoint across classes.
        let half = (cfg.vocab_size / 2) as u32;
        let mut pool: Vec<u32> = (half..cfg.vocab_size as u32).collect();
        rng.shuffle(&mut pool);
        let marker_tokens: Vec<Vec<u32>> = (0..cfg.n_classes)
            .map(|c| pool[c * MARKERS_PER_CLASS..(c + 1) * MARKERS_PER_CLASS].to_vec())
            .collect();
        let corpus = SyntheticCorpus::new(CorpusConfig {
            corpus_seed: cfg.seed,
            ..CorpusConfig::with_vocab(cfg.vocab_size)
        });
        TaskGen {
            cfg,
            corpus,
            marker_tokens,
            rng,
            stream: 1,
        }
    }

    /// The task configuration.
    pub fn config(&self) -> &TaskConfig {
        &self.cfg
    }

    /// Samples `n` labelled sequences: `(tokens, labels)` with
    /// `tokens.len() == n * seq` and labels in `0..n_classes`.
    pub fn sample(&mut self, n: usize) -> (Vec<u32>, Vec<u32>) {
        let mut tokens = Vec::with_capacity(n * self.cfg.seq);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let label = self.rng.below(self.cfg.n_classes) as u32;
            let mut seq = self.corpus.generate(self.cfg.seq, self.stream);
            self.stream += 1;
            // Inject true-class markers...
            for _ in 0..self.cfg.true_markers {
                let pos = self.rng.below(self.cfg.seq);
                let m = self.rng.below(self.marker_tokens[label as usize].len());
                seq[pos] = self.marker_tokens[label as usize][m];
            }
            // ...and a smaller number of distractors from other classes.
            for _ in 0..self.cfg.distractors {
                let other = loop {
                    let c = self.rng.below(self.cfg.n_classes);
                    if c != label as usize {
                        break c;
                    }
                };
                let pos = self.rng.below(self.cfg.seq);
                let m = self.rng.below(self.marker_tokens[other].len());
                seq[pos] = self.marker_tokens[other][m];
            }
            tokens.extend_from_slice(&seq);
            labels.push(label);
        }
        (tokens, labels)
    }

    /// A frozen evaluation split of `n` examples (independent of training
    /// draws).
    pub fn eval_set(&self, n: usize) -> (Vec<u32>, Vec<u32>) {
        let mut clone = TaskGen::new(self.cfg.clone());
        clone.rng = Rng::seed_from_u64(self.cfg.seed ^ 0xEEE7);
        clone.stream = u64::MAX / 2;
        clone.sample(n)
    }
}

/// The eight commonsense-reasoning stand-ins of Table 4.
///
/// Difficulty varies across tasks (marker density and class count) so the
/// accuracy spread across methods resembles the paper's.
pub fn commonsense_suite(vocab_size: usize, seq: usize) -> Vec<TaskGen> {
    let spec: [(&str, usize, usize, usize); 8] = [
        // (name, classes, true markers, distractors)
        ("WG", 2, 4, 2),
        ("PIQA", 2, 5, 2),
        ("SIQA", 3, 5, 2),
        ("OBQA", 4, 6, 2),
        ("HS", 4, 4, 2),
        ("BoolQ", 2, 3, 2),
        ("Arc-E", 4, 7, 2),
        ("Arc-C", 4, 4, 3),
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(name, classes, markers, distractors))| {
            TaskGen::new(TaskConfig {
                name: name.to_string(),
                n_classes: classes,
                vocab_size,
                seq,
                true_markers: markers,
                distractors,
                seed: 0x4A5E + i as u64,
            })
        })
        .collect()
}

/// The four MMLU domain stand-ins of Table 5.
pub fn mmlu_suite(vocab_size: usize, seq: usize) -> Vec<TaskGen> {
    let spec: [(&str, usize, usize, usize); 4] = [
        ("STEM", 4, 4, 2),
        ("Social Sciences", 4, 6, 2),
        ("Humanities", 4, 5, 2),
        ("Other", 4, 5, 1),
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(name, classes, markers, distractors))| {
            TaskGen::new(TaskConfig {
                name: name.to_string(),
                n_classes: classes,
                vocab_size,
                seq,
                true_markers: markers,
                distractors,
                seed: 0x33B0 + i as u64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_cfg() -> TaskConfig {
        TaskConfig {
            name: "demo".into(),
            n_classes: 4,
            vocab_size: 128,
            seq: 32,
            true_markers: 5,
            distractors: 2,
            seed: 9,
        }
    }

    #[test]
    fn sample_shapes_and_label_range() {
        let mut t = TaskGen::new(demo_cfg());
        let (tokens, labels) = t.sample(10);
        assert_eq!(tokens.len(), 10 * 32);
        assert_eq!(labels.len(), 10);
        assert!(labels.iter().all(|&l| l < 4));
        assert!(tokens.iter().all(|&t| (t as usize) < 128));
    }

    #[test]
    fn label_is_recoverable_by_marker_counting() {
        // An oracle that counts markers should beat 90% accuracy.
        let mut t = TaskGen::new(demo_cfg());
        let markers = t.marker_tokens.clone();
        let (tokens, labels) = t.sample(200);
        let mut correct = 0;
        for (i, &label) in labels.iter().enumerate() {
            let seq = &tokens[i * 32..(i + 1) * 32];
            let counts: Vec<usize> = markers
                .iter()
                .map(|ms| seq.iter().filter(|t| ms.contains(t)).count())
                .collect();
            let pred = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .unwrap()
                .0;
            if pred == label as usize {
                correct += 1;
            }
        }
        assert!(correct >= 180, "oracle accuracy {correct}/200");
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let mut t = TaskGen::new(demo_cfg());
        let (_, labels) = t.sample(400);
        for c in 0..4u32 {
            let n = labels.iter().filter(|&&l| l == c).count();
            assert!((60..=140).contains(&n), "class {c}: {n}/400");
        }
    }

    #[test]
    fn eval_set_is_frozen() {
        let t = TaskGen::new(demo_cfg());
        assert_eq!(t.eval_set(20), t.eval_set(20));
    }

    #[test]
    fn suites_have_expected_cardinality_and_names() {
        let cs = commonsense_suite(512, 32);
        assert_eq!(cs.len(), 8);
        assert_eq!(cs[0].config().name, "WG");
        let mm = mmlu_suite(512, 32);
        assert_eq!(mm.len(), 4);
        assert_eq!(mm[3].config().name, "Other");
    }

    #[test]
    fn marker_sets_are_disjoint_across_classes() {
        let t = TaskGen::new(demo_cfg());
        for a in 0..4 {
            for b in (a + 1)..4 {
                for m in &t.marker_tokens[a] {
                    assert!(!t.marker_tokens[b].contains(m));
                }
            }
        }
    }
}
