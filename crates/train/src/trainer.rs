//! The pre-training loop.

use std::time::Instant;

use apollo_data::LmBatcher;
use apollo_nn::{LlamaModel, ParamKind};
use apollo_optim::{Optimizer, ParamUpdate};
use apollo_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::schedule::LrSchedule;

/// Pre-training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Peak learning rate (the paper uses 0.01 for APOLLO-family runs).
    pub lr: f32,
    /// Global gradient-norm clip (`None` disables; APOLLO-family optimizers
    /// rely on the norm-growth limiter instead).
    pub grad_clip: Option<f32>,
    /// Evaluate validation perplexity every this many steps (0 = only at
    /// the end).
    pub eval_every: usize,
    /// Validation sequences held out per evaluation.
    pub eval_seqs: usize,
    /// ReLoRA adapter-merge period (`None` for non-ReLoRA runs).
    pub merge_every: Option<usize>,
    /// Record per-step wall-clock times (for the Fig. 9 throughput study).
    pub record_step_times: bool,
    /// Micro-batches accumulated per optimizer step (the paper's 7B runs
    /// assemble a 512-sequence global batch from memory-bound
    /// micro-batches). Gradients are averaged across the accumulation
    /// window. 1 = no accumulation.
    pub grad_accum: usize,
    /// Q-GaLore-style INT8 weight training: after every optimizer step,
    /// round-trip all weight matrices (embedding, attention/MLP, LM head —
    /// not norm gains) through group-wise INT8 with this group size, so the
    /// persistent weights are exactly what an INT8 store would hold
    /// (straight-through estimator). `None` trains in full precision.
    pub quantize_weights: Option<usize>,
}

impl TrainConfig {
    /// A short run with sensible defaults for tests and quick experiments.
    pub fn quick(steps: usize) -> Self {
        TrainConfig {
            steps,
            lr: 0.01,
            grad_clip: None,
            eval_every: 0,
            eval_seqs: 16,
            merge_every: None,
            record_step_times: false,
            grad_accum: 1,
            quantize_weights: None,
        }
    }
}

/// Everything a pre-training run produced, serializable for the experiment
/// harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunLog {
    /// Optimizer label.
    pub optimizer: String,
    /// Model name.
    pub model: String,
    /// `(step, training loss)` samples.
    pub train_losses: Vec<(usize, f32)>,
    /// `(step, validation perplexity)` samples.
    pub eval_ppls: Vec<(usize, f32)>,
    /// Final validation perplexity.
    pub final_ppl: f32,
    /// Optimizer-state footprint after training, in f32-equivalent elements.
    pub state_elems: usize,
    /// Optimizer-state footprint in bytes (honours INT8 states).
    pub state_bytes: usize,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
    /// Per-step wall-clock milliseconds (only when requested).
    pub step_times_ms: Vec<f32>,
}

/// Validation perplexity of `model` on a fixed held-out set drawn from
/// `batcher`, evaluated in chunks of the batcher's batch size.
pub fn eval_perplexity(model: &LlamaModel, batcher: &LmBatcher, eval_seqs: usize) -> f32 {
    let (tokens, targets, n_seqs) = batcher.validation_set(eval_seqs);
    let seq = batcher.seq();
    let chunk = batcher.batch().min(n_seqs);
    let mut total_loss = 0.0f64;
    let mut total_seqs = 0usize;
    let mut start = 0;
    while start < n_seqs {
        let end = (start + chunk).min(n_seqs);
        let t = &tokens[start * seq..end * seq];
        let y = &targets[start * seq..end * seq];
        let loss = model.eval_loss(t, y, end - start);
        total_loss += loss as f64 * (end - start) as f64;
        total_seqs += end - start;
        start = end;
    }
    ((total_loss / total_seqs as f64).exp()) as f32
}

/// Clips the global gradient norm across all trainable tensors to `max_norm`.
fn clip_global_norm(grads: &mut [Option<Matrix>], max_norm: f32) {
    let total: f64 = grads
        .iter()
        .flatten()
        .map(|g| {
            let n = g.fro_norm() as f64;
            n * n
        })
        .sum();
    let norm = total.sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut().flatten() {
            g.scale_assign(scale);
        }
    }
}

/// Runs the pre-training loop: warmup+cosine schedule, optional global
/// clipping, optional ReLoRA merges, periodic validation-perplexity
/// evaluation.
///
/// # Panics
///
/// Panics if `cfg.steps == 0`.
pub fn pretrain(
    model: &mut LlamaModel,
    opt: &mut dyn Optimizer,
    batcher: &mut LmBatcher,
    cfg: &TrainConfig,
) -> RunLog {
    assert!(cfg.steps > 0, "need at least one step");
    let schedule = LrSchedule::paper_default(cfg.lr, cfg.steps);
    let mut log = RunLog {
        optimizer: opt.name(),
        model: model.config().name.clone(),
        train_losses: Vec::new(),
        eval_ppls: Vec::new(),
        final_ppl: f32::NAN,
        state_elems: 0,
        state_bytes: 0,
        wall_secs: 0.0,
        step_times_ms: Vec::new(),
    };
    let started = Instant::now();
    let loss_sample_every = (cfg.steps / 200).max(1);
    let mut merge_rng = apollo_tensor::Rng::seed_from_u64(0x4E10);

    let accum = cfg.grad_accum.max(1);
    for step in 0..cfg.steps {
        let step_started = Instant::now();
        let (tokens, targets) = batcher.next_batch();
        let (mut loss, mut grads) = model.loss_and_grads(&tokens, &targets, batcher.batch());
        for _ in 1..accum {
            let (tokens, targets) = batcher.next_batch();
            let (l2, g2) = model.loss_and_grads(&tokens, &targets, batcher.batch());
            loss += l2;
            for (acc, extra) in grads.iter_mut().zip(&g2) {
                if let (Some(a), Some(e)) = (acc.as_mut(), extra.as_ref()) {
                    a.add_assign(e);
                }
            }
        }
        if accum > 1 {
            loss /= accum as f32;
            let inv = 1.0 / accum as f32;
            for g in grads.iter_mut().flatten() {
                g.scale_assign(inv);
            }
        }
        if let Some(max_norm) = cfg.grad_clip {
            clip_global_norm(&mut grads, max_norm);
        }
        let lr = schedule.lr_at(step);
        {
            // Assemble the optimizer's view: trainable params with grads,
            // in stable declaration order.
            let mut updates: Vec<ParamUpdate<'_>> = Vec::new();
            for (p, g) in model.params.iter_mut().zip(&grads) {
                if let (true, Some(grad)) = (p.trainable, g.as_ref()) {
                    updates.push(ParamUpdate {
                        name: &p.name,
                        value: &mut p.value,
                        grad,
                        projectable: p.kind == ParamKind::Projectable,
                    });
                }
            }
            opt.step(&mut updates, lr);
        }
        if let Some(group) = cfg.quantize_weights {
            for p in model.params.iter_mut() {
                if p.kind != ParamKind::Norm {
                    p.value = apollo_quant::fake_quantize(&p.value, group);
                }
            }
        }
        if let Some(every) = cfg.merge_every {
            if every > 0 && (step + 1) % every == 0 {
                model.merge_adapters(&mut merge_rng);
                opt.reset_state();
            }
        }
        if step % loss_sample_every == 0 || step + 1 == cfg.steps {
            log.train_losses.push((step, loss));
        }
        if cfg.record_step_times {
            log.step_times_ms
                .push(step_started.elapsed().as_secs_f32() * 1e3);
        }
        if cfg.eval_every > 0 && (step + 1) % cfg.eval_every == 0 && step + 1 != cfg.steps {
            let ppl = eval_perplexity(model, batcher, cfg.eval_seqs);
            log.eval_ppls.push((step + 1, ppl));
        }
    }

    log.final_ppl = eval_perplexity(model, batcher, cfg.eval_seqs);
    log.eval_ppls.push((cfg.steps, log.final_ppl));
    log.state_elems = opt.state_elems();
    log.state_bytes = opt.state_bytes();
    log.wall_secs = started.elapsed().as_secs_f64();
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_data::{CorpusConfig, SyntheticCorpus};
    use apollo_nn::{LinearMode, ModelConfig};
    use apollo_optim::{AdamW, Apollo};
    use apollo_tensor::Rng;

    fn setup(batch: usize) -> (LlamaModel, LmBatcher) {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(100);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
        let batcher = LmBatcher::new(corpus, batch, cfg.max_seq);
        (model, batcher)
    }

    #[test]
    fn adamw_pretraining_reduces_perplexity() {
        let (mut model, mut batcher) = setup(4);
        let before = eval_perplexity(&model, &batcher, 8);
        let mut opt = AdamW::new();
        let log = pretrain(&mut model, &mut opt, &mut batcher, &TrainConfig::quick(60));
        assert!(
            log.final_ppl < before * 0.9,
            "ppl {} -> {}",
            before,
            log.final_ppl
        );
        assert!(log.state_elems > 0);
        assert!(log.wall_secs > 0.0);
    }

    #[test]
    fn apollo_pretraining_reduces_perplexity() {
        let (mut model, mut batcher) = setup(4);
        let before = eval_perplexity(&model, &batcher, 8);
        let mut opt = Apollo::new(4, 20);
        let log = pretrain(&mut model, &mut opt, &mut batcher, &TrainConfig::quick(60));
        assert!(
            log.final_ppl < before * 0.9,
            "ppl {} -> {}",
            before,
            log.final_ppl
        );
    }

    #[test]
    fn eval_is_deterministic() {
        let (model, batcher) = setup(4);
        assert_eq!(
            eval_perplexity(&model, &batcher, 8),
            eval_perplexity(&model, &batcher, 8)
        );
    }

    #[test]
    fn grad_clip_bounds_global_norm() {
        let mut grads = vec![
            Some(Matrix::full(2, 2, 10.0)),
            None,
            Some(Matrix::full(1, 1, 10.0)),
        ];
        clip_global_norm(&mut grads, 1.0);
        let total: f32 = grads
            .iter()
            .flatten()
            .map(|g| g.fro_norm().powi(2))
            .sum::<f32>()
            .sqrt();
        assert!((total - 1.0).abs() < 1e-4, "norm {total}");
    }

    #[test]
    fn grad_clip_leaves_small_gradients_alone() {
        let mut grads = vec![Some(Matrix::full(1, 1, 0.1))];
        clip_global_norm(&mut grads, 1.0);
        assert_eq!(grads[0].as_ref().unwrap().get(0, 0), 0.1);
    }

    #[test]
    fn step_times_recorded_when_requested() {
        let (mut model, mut batcher) = setup(2);
        let mut opt = AdamW::new();
        let cfg = TrainConfig {
            record_step_times: true,
            ..TrainConfig::quick(5)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg);
        assert_eq!(log.step_times_ms.len(), 5);
        assert!(log.step_times_ms.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn periodic_eval_points_are_logged() {
        let (mut model, mut batcher) = setup(2);
        let mut opt = AdamW::new();
        let cfg = TrainConfig {
            eval_every: 10,
            ..TrainConfig::quick(30)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg);
        // evals at 10, 20, and the final one at 30.
        assert_eq!(log.eval_ppls.len(), 3);
        assert_eq!(log.eval_ppls.last().unwrap().0, 30);
    }

    #[test]
    fn quantized_weight_training_stays_on_grid_and_learns() {
        let (mut model, mut batcher) = setup(4);
        let before = eval_perplexity(&model, &batcher, 8);
        let mut opt = AdamW::new();
        let cfg = TrainConfig {
            quantize_weights: Some(32),
            ..TrainConfig::quick(60)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg);
        assert!(log.final_ppl < before * 0.95, "{before} -> {}", log.final_ppl);
        // Weights must sit exactly on their INT8 grid.
        for p in &model.params {
            if p.kind != apollo_nn::ParamKind::Norm {
                let requant = apollo_quant::fake_quantize(&p.value, 32);
                assert_eq!(requant, p.value, "{} off-grid", p.name);
            }
        }
    }

    #[test]
    fn grad_accumulation_approximates_larger_batch() {
        // accum=2 at batch 2 sees the same data as batch 4 with accum=1
        // would in twice the steps; sanity: it trains and reduces ppl.
        let (mut model, mut batcher) = setup(2);
        let before = eval_perplexity(&model, &batcher, 8);
        let mut opt = AdamW::new();
        let cfg = TrainConfig {
            grad_accum: 2,
            ..TrainConfig::quick(40)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg);
        assert!(log.final_ppl < before * 0.95, "{before} -> {}", log.final_ppl);
    }

    #[test]
    fn relora_merge_path_runs() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(101);
        let mut model = LlamaModel::new(
            &cfg,
            LinearMode::LoRa { rank: 2, alpha: 4.0 },
            &mut rng,
        );
        let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
        let mut batcher = LmBatcher::new(corpus, 2, cfg.max_seq);
        let mut opt = AdamW::new();
        let cfg_t = TrainConfig {
            merge_every: Some(10),
            ..TrainConfig::quick(25)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg_t);
        assert!(log.final_ppl.is_finite());
    }
}
