//! Table 2: pre-training validation perplexity across methods and model
//! sizes (60M–1B proxies), with the paper-geometry memory column
//! (weights + optimizer states).

use apollo_bench::{pretrain_run, print_table, proxy_for, scaled, write_json, Method};
use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::{MemoryOptions, TrainingMemoryModel};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    method: String,
    size: String,
    ppl: f32,
    memory_gib: f64,
    state_elems: usize,
    wall_secs: f64,
}

/// Weights + optimizer states (Table 2's definition of "Memory") for the
/// *paper* geometry behind each proxy size.
fn paper_memory_gib(method: Method, size: &str) -> f64 {
    let cfg = match size {
        "60M" => ModelConfig::llama_60m(),
        "130M" => ModelConfig::llama_130m(),
        "350M" => ModelConfig::llama_350m(),
        "1B" => ModelConfig::llama_1b(),
        _ => unreachable!(),
    };
    let rank = method.rank(&cfg);
    let spec = match method {
        Method::AdamW | Method::LowRank | Method::LoRa | Method::ReLoRa => MethodSpec::AdamW,
        Method::GaLore => MethodSpec::GaLore { rank },
        Method::Fira => MethodSpec::Fira { rank },
        Method::ApolloSvd => MethodSpec::ApolloSvd { rank },
        Method::Apollo | Method::ApolloHalfRank => MethodSpec::Apollo { rank },
        Method::ApolloMini => MethodSpec::ApolloMini,
        _ => MethodSpec::AdamW,
    };
    let mem = TrainingMemoryModel::new(&cfg);
    let b = mem.breakdown(spec, &MemoryOptions::figure1(256));
    b.weights_gib + b.optimizer_gib
}

fn main() {
    let sizes = [
        ("60M", scaled(600)),
        ("130M", scaled(300)),
        ("350M", scaled(150)),
        ("1B", scaled(60)),
    ];
    let methods = [
        Method::AdamW,
        Method::LowRank,
        Method::LoRa,
        Method::ReLoRa,
        Method::GaLore,
        Method::Fira,
        Method::ApolloSvd,
        Method::Apollo,
        Method::ApolloHalfRank,
        Method::ApolloMini,
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for (size, steps) in sizes {
        let cfg = proxy_for(size);
        for m in methods {
            eprintln!("[table2] {size} {} ({steps} steps) ...", m.label());
            let log = pretrain_run(&cfg, m, steps, 4, 42, None);
            cells.push(Cell {
                method: m.label().to_string(),
                size: size.to_string(),
                ppl: log.final_ppl,
                memory_gib: paper_memory_gib(m, size),
                state_elems: log.state_elems,
                wall_secs: log.wall_secs,
            });
        }
    }

    let mut rows = Vec::new();
    for m in methods {
        let mut row = vec![m.label().to_string()];
        for (size, _) in sizes {
            let c = cells
                .iter()
                .find(|c| c.method == m.label() && c.size == size)
                .unwrap();
            row.push(format!("{:.2}", c.ppl));
            row.push(format!("{:.2}G", c.memory_gib));
        }
        rows.push(row);
    }
    print_table(
        "Table 2 — pre-training val ppl (proxy) and memory (paper geometry, weights+states)",
        &[
            "Method", "60M ppl", "mem", "130M ppl", "mem", "350M ppl", "mem", "1B ppl", "mem",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: Low-Rank ≫ worst; LoRA/ReLoRA trail AdamW; GaLore ≈ AdamW; \
         Fira/APOLLO(±SVD, ±half-rank)/Mini ≤ AdamW at a fraction of the memory."
    );
    write_json("table2_pretrain", &cells);
}
